// Sequential DFS bridge finding — Hopcroft-Tarjan / Paton (paper §4.1).
//
// The classical linear-time algorithm and the paper's "Single-core CPU DFS"
// baseline: a depth-first search computes discovery times and the low
// function; a tree edge to child c is a bridge iff low(c) > disc(parent).
// Iterative (explicit stack) so million-node road networks don't overflow
// the call stack; parallel edges are handled by skipping only the one
// half-edge the child was entered through (by edge id, not by endpoint).
#pragma once

#include "bridges/bridges.hpp"
#include "graph/graph.hpp"

namespace emc::bridges {

/// Works on any graph (need not be connected). O(n + m).
BridgeMask find_bridges_dfs(const graph::Csr& graph);

}  // namespace emc::bridges
