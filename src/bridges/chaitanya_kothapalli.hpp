// The Chaitanya-Kothapalli bridge finder (paper §4.1, "CK").
//
// The state-of-the-art heuristic the paper compares against: simple,
// worst-case quadratic work, and excellent on small-diameter graphs.
//
//   Phase 1: a rooted spanning tree — parallel BFS (which bounds the tree
//            depth by twice the graph diameter, hence the O(m·d) marking
//            bound).
//   Phase 2: for every non-tree edge in parallel, walk both endpoints up
//            the tree to their meeting point (their LCA), marking every
//            tree edge on the way. A tree edge is a bridge iff it is never
//            marked; non-tree edges are never bridges.
//
// The multi-core CPU variant of the paper runs the identical algorithm on a
// CPU-width context.
#pragma once

#include "bridges/bfs.hpp"
#include "bridges/bridges.hpp"
#include "device/context.hpp"
#include "graph/graph.hpp"
#include "util/timer.hpp"

namespace emc::bridges {

/// Requires a connected graph. `csr` must be the adjacency of `graph`.
BridgeMask find_bridges_ck(const device::Context& ctx,
                           const graph::EdgeList& graph,
                           const graph::Csr& csr,
                           util::PhaseTimer* phases = nullptr);

/// The marking phase alone, reusable with any rooted spanning tree (this is
/// what the hybrid algorithm of §4.3 calls after rooting a CC tree with the
/// Euler tour technique). `parent_edge[v]` maps v to the undirected edge id
/// of (v, parent[v]); `is_tree_edge` flags edges of the spanning tree.
BridgeMask ck_marking_phase(const device::Context& ctx,
                            const graph::EdgeList& graph,
                            const std::vector<NodeId>& parent,
                            const std::vector<EdgeId>& parent_edge,
                            const std::vector<NodeId>& level,
                            const std::vector<std::uint8_t>& is_tree_edge,
                            util::PhaseTimer* phases = nullptr);

}  // namespace emc::bridges
