#include "bridges/tarjan_vishkin.hpp"

#include <atomic>
#include <cassert>

#include "bridges/cc_spanning.hpp"
#include "bridges/tv_detail.hpp"
#include "core/euler_tour.hpp"
#include "device/primitives.hpp"
#include "device/segreduce.hpp"
#include "rmq/segment_tree.hpp"
#include "rmq/sparse_table.hpp"

namespace emc::bridges {

BridgeMask find_bridges_tarjan_vishkin(const device::Context& ctx,
                                       const graph::EdgeList& graph,
                                       util::PhaseTimer* phases) {
  const auto n = static_cast<std::size_t>(graph.num_nodes);
  const std::size_t m = graph.edges.size();
  BridgeMask is_bridge(m, 0);
  if (n <= 1 || m == 0) return is_bridge;

  // --- Phase 1: spanning tree from connected components.
  const SpanningForest forest = cc_spanning_forest(ctx, graph, phases);
  assert(forest.num_components == 1 && "TV requires a connected input");

  // --- Phase 2: Euler tour statistics on the spanning tree.
  core::TreeStats stats;
  std::vector<std::uint8_t> is_tree_edge(m, 0);
  {
    util::ScopedPhase phase(phases, "euler_tour");
    graph::EdgeList tree;
    tree.num_nodes = graph.num_nodes;
    tree.edges.resize(forest.tree_edges.size());
    device::launch(ctx, forest.tree_edges.size(), [&](std::size_t k) {
      const EdgeId e = forest.tree_edges[k];
      tree.edges[k] = graph.edges[e];
      is_tree_edge[e] = 1;
    });
    const NodeId root = 0;
    const core::EulerTour tour = core::build_euler_tour(ctx, tree, root);
    stats = core::compute_tree_stats(ctx, tour);
  }
  const std::vector<NodeId>& pre = stats.preorder;
  const std::vector<NodeId>& size = stats.subtree_size;

  // --- Phase 3: low/high and the bridge criterion.
  util::ScopedPhase phase(phases, "detect_bridges");

  // Per-node min/max preorder among non-tree neighbors — the paper's
  // sort + mgpu::segreduce step: emit (node, pre[other endpoint]) for both
  // directions of every non-tree edge, radix-sort by node (streaming
  // passes, exactly how mgpu consumes it), then reduce each run. The
  // preorder-indexed staging arrays are arena scratch.
  device::Arena::Scope scope(ctx.arena());
  std::vector<NodeId> node_min(n), node_max(n);
  device::launch(ctx, n, [&](std::size_t v) {
    node_min[v] = pre[v];  // the node itself can never provide an escape
    node_max[v] = pre[v];
  });
  tv_detail::aggregate_non_tree_min_max(ctx, graph, is_tree_edge, pre,
                                        node_min, node_max);

  // RMQ over preorder positions: value at position pre[v]-1 describes v.
  // A sparse table answers the n subtree-interval queries in O(1) each with
  // two streaming lookups; the paper's segment tree is kept as an ablation
  // (bench_ablation --detect-rmq=segtree compares the two).
  NodeId* by_pre_min = scope.get<NodeId>(n);
  NodeId* by_pre_max = scope.get<NodeId>(n);
  device::launch(ctx, n, [&](std::size_t v) {
    by_pre_min[pre[v] - 1] = node_min[v];
    by_pre_max[pre[v] - 1] = node_max[v];
  });
  const rmq::SparseTable<NodeId, rmq::MinOp> low_tree(ctx, by_pre_min, n);
  const rmq::SparseTable<NodeId, rmq::MaxOp> high_tree(ctx, by_pre_max, n);

  // Criterion, one virtual thread per tree edge: let c be the child
  // endpoint; bridge iff low(c) >= pre(c) and high(c) < pre(c) + size(c).
  device::launch(ctx, forest.tree_edges.size(), [&](std::size_t k) {
    const EdgeId e = forest.tree_edges[k];
    const graph::Edge edge = graph.edges[e];
    const NodeId c =
        stats.parent[edge.u] == edge.v ? edge.u : edge.v;  // child endpoint
    const std::size_t lo = static_cast<std::size_t>(pre[c]) - 1;
    const std::size_t hi = lo + static_cast<std::size_t>(size[c]) - 1;
    const NodeId low = low_tree.query(lo, hi);
    const NodeId high = high_tree.query(lo, hi);
    if (low >= pre[c] && high < pre[c] + size[c]) is_bridge[e] = 1;
  });
  return is_bridge;
}

}  // namespace emc::bridges
