// 2-edge-connected components (paper §4, problem definition).
//
// "A simple method to decompose a graph into 2-edge-connected components is
// to find all bridges, remove them, and find connected components in the
// resulting graph" — that is exactly what this does, reusing any bridge
// finder's mask and the device CC algorithm.
#pragma once

#include <vector>

#include "bridges/bridges.hpp"
#include "device/context.hpp"
#include "graph/graph.hpp"
#include "util/types.hpp"

namespace emc::bridges {

/// Labels each node with a representative of its 2-edge-connected
/// component (nodes u, v share a label iff two edge-disjoint u-v paths
/// exist). `is_bridge` must come from the same graph.
std::vector<NodeId> two_edge_components(const device::Context& ctx,
                                        const graph::EdgeList& graph,
                                        const BridgeMask& is_bridge);

}  // namespace emc::bridges
