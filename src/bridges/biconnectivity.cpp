#include "bridges/biconnectivity.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "bridges/cc_spanning.hpp"
#include "bridges/tv_detail.hpp"
#include "core/euler_tour.hpp"
#include "device/primitives.hpp"
#include "rmq/segment_tree.hpp"
#include "rmq/sparse_table.hpp"

namespace emc::bridges {

BiconnectivityResult biconnectivity_tv(const device::Context& ctx,
                                       const graph::EdgeList& graph,
                                       util::PhaseTimer* phases) {
  const auto n = static_cast<std::size_t>(graph.num_nodes);
  const std::size_t m = graph.edges.size();
  BiconnectivityResult result;
  result.edge_block.assign(m, kNoNode);
  result.is_articulation.assign(n, 0);
  if (m == 0) return result;

  // --- Spanning tree + Euler tour statistics (the paper's TV pipeline).
  const SpanningForest forest = cc_spanning_forest(ctx, graph, phases);
  assert(forest.num_components == 1 && "requires a connected input");

  std::vector<std::uint8_t> is_tree_edge(m, 0);
  graph::EdgeList tree;
  tree.num_nodes = graph.num_nodes;
  tree.edges.resize(forest.tree_edges.size());
  device::launch(ctx, forest.tree_edges.size(), [&](std::size_t k) {
    const EdgeId e = forest.tree_edges[k];
    tree.edges[k] = graph.edges[e];
    is_tree_edge[e] = 1;
  });
  core::TreeStats stats;
  {
    util::ScopedPhase phase(phases, "euler_tour");
    const core::EulerTour tour = core::build_euler_tour(ctx, tree, 0);
    stats = core::compute_tree_stats(ctx, tour);
  }
  const std::vector<NodeId>& pre = stats.preorder;
  const std::vector<NodeId>& size = stats.subtree_size;
  const std::vector<NodeId>& parent = stats.parent;

  util::ScopedPhase phase(phases, "blocks");

  // --- Per-node min/max non-tree neighbor preorders, then subtree low/high
  // (same machinery as the bridge finder).
  std::vector<NodeId> node_min(n), node_max(n);
  device::launch(ctx, n, [&](std::size_t v) {
    node_min[v] = pre[v];
    node_max[v] = pre[v];
  });
  tv_detail::aggregate_non_tree_min_max(ctx, graph, is_tree_edge, pre,
                                        node_min, node_max);
  std::vector<NodeId> by_pre_min(n), by_pre_max(n);
  device::launch(ctx, n, [&](std::size_t v) {
    by_pre_min[pre[v] - 1] = node_min[v];
    by_pre_max[pre[v] - 1] = node_max[v];
  });
  const rmq::SparseTable<NodeId, rmq::MinOp> low_tree(ctx, by_pre_min);
  const rmq::SparseTable<NodeId, rmq::MaxOp> high_tree(ctx, by_pre_max);
  std::vector<NodeId> low(n), high(n);
  device::launch(ctx, n, [&](std::size_t v) {
    const auto lo = static_cast<std::size_t>(pre[v]) - 1;
    const auto hi = lo + static_cast<std::size_t>(size[v]) - 1;
    low[v] = low_tree.query(lo, hi);
    high[v] = high_tree.query(lo, hi);
  });

  // --- Auxiliary graph G''. Vertices: non-root nodes (standing for their
  // parent edges); we reuse the full node id space (the root is isolated).
  graph::EdgeList aux;
  aux.num_nodes = graph.num_nodes;
  // Rule (a): non-tree edges with unrelated endpoints. Sized with a count +
  // scan so construction stays a bulk pipeline.
  {
    std::vector<EdgeId> flag(m), pos(m);
    device::transform(ctx, m, flag.data(), [&](std::size_t e) -> EdgeId {
      if (is_tree_edge[e]) return 0;
      auto [u, v] = graph.edges[e];
      if (pre[v] < pre[u]) std::swap(u, v);
      return pre[u] + size[u] <= pre[v] ? 1 : 0;
    });
    const EdgeId rule_a =
        device::exclusive_scan(ctx, flag.data(), m, pos.data());
    // Rule (b): per non-root, non-root-parent node w.
    std::vector<EdgeId> flag_b(n), pos_b(n);
    device::transform(ctx, n, flag_b.data(), [&](std::size_t w) -> EdgeId {
      const NodeId v = parent[w];
      if (v == kNoNode || parent[v] == kNoNode) return 0;
      return (low[w] < pre[v] || high[w] >= pre[v] + size[v]) ? 1 : 0;
    });
    const EdgeId rule_b =
        device::exclusive_scan(ctx, flag_b.data(), n, pos_b.data());
    aux.edges.resize(static_cast<std::size_t>(rule_a + rule_b));
    device::launch(ctx, m, [&](std::size_t e) {
      if (!flag[e]) return;
      aux.edges[pos[e]] = graph.edges[e];
    });
    device::launch(ctx, n, [&](std::size_t w) {
      if (!flag_b[w]) return;
      aux.edges[rule_a + pos_b[w]] = {static_cast<NodeId>(w), parent[w]};
    });
  }

  // --- Blocks = connected components of G'' (device CC again).
  const SpanningForest blocks = cc_spanning_forest(ctx, aux);

  // Edge labels: tree edge -> its child endpoint's component; non-tree
  // edge -> the deeper endpoint (larger preorder; for unrelated endpoints
  // rule (a) makes either choice equivalent).
  device::transform(ctx, m, result.edge_block.data(),
                    [&](std::size_t e) -> NodeId {
                      const auto [u, v] = graph.edges[e];
                      if (is_tree_edge[e]) {
                        const NodeId child = parent[u] == v ? u : v;
                        return blocks.component[child];
                      }
                      return blocks.component[pre[u] > pre[v] ? u : v];
                    });

  // Count distinct blocks among tree-edge representatives (every block
  // contains at least one tree edge of T).
  {
    std::vector<std::uint8_t> seen(n, 0);
    for (std::size_t w = 0; w < n; ++w) {
      if (parent[w] != kNoNode) seen[blocks.component[w]] = 1;
    }
    result.num_blocks = 0;
    for (const auto s : seen) result.num_blocks += s;
  }

  // --- Articulation points: incident edges span >= 2 blocks. One pass over
  // half-edges via a counting-sorted incidence structure.
  {
    std::vector<EdgeId> counts(n, 0);
    device::launch(ctx, m, [&](std::size_t e) {
      std::atomic_ref<EdgeId>(counts[graph.edges[e].u])
          .fetch_add(1, std::memory_order_relaxed);
      std::atomic_ref<EdgeId>(counts[graph.edges[e].v])
          .fetch_add(1, std::memory_order_relaxed);
    });
    std::vector<EdgeId> offsets(n + 1);
    const EdgeId total =
        device::exclusive_scan(ctx, counts.data(), n, offsets.data());
    offsets[n] = total;
    std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
    std::vector<NodeId> labels(static_cast<std::size_t>(total));
    device::launch(ctx, m, [&](std::size_t e) {
      const auto [u, v] = graph.edges[e];
      labels[std::atomic_ref<EdgeId>(cursor[u]).fetch_add(
          1, std::memory_order_relaxed)] = result.edge_block[e];
      labels[std::atomic_ref<EdgeId>(cursor[v]).fetch_add(
          1, std::memory_order_relaxed)] = result.edge_block[e];
    });
    device::launch(ctx, n, [&](std::size_t v) {
      const EdgeId begin = offsets[v];
      const EdgeId end = offsets[v + 1];
      if (begin == end) return;
      const NodeId first = labels[begin];
      for (EdgeId i = begin + 1; i < end; ++i) {
        if (labels[i] != first) {
          result.is_articulation[v] = 1;
          return;
        }
      }
    });
  }
  return result;
}

BiconnectivityResult biconnectivity_dfs(const graph::EdgeList& graph,
                                        const graph::Csr& csr) {
  assert(graph::csr_matches(graph, csr));  // the dual-argument contract
  const NodeId n = csr.num_nodes;
  const std::size_t m = graph.edges.size();
  BiconnectivityResult result;
  result.edge_block.assign(m, kNoNode);
  result.is_articulation.assign(static_cast<std::size_t>(n), 0);
  if (m == 0) return result;

  std::vector<NodeId> disc(static_cast<std::size_t>(n), kNoNode);
  std::vector<NodeId> low(static_cast<std::size_t>(n));
  std::vector<EdgeId> edge_stack;
  NodeId timer = 0;
  NodeId next_label = 0;

  struct Frame {
    NodeId v;
    EdgeId via_edge;
    EdgeId cursor;
    int tree_children = 0;
  };
  std::vector<Frame> stack;

  auto close_block = [&](EdgeId until_edge) {
    const NodeId label = next_label++;
    ++result.num_blocks;
    while (true) {
      const EdgeId e = edge_stack.back();
      edge_stack.pop_back();
      result.edge_block[e] = label;
      if (e == until_edge) break;
    }
  };

  for (NodeId start = 0; start < n; ++start) {
    if (disc[start] != kNoNode) continue;
    disc[start] = low[start] = timer++;
    stack.push_back({start, kNoEdge, csr.row_offsets[start], 0});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const NodeId v = frame.v;
      if (frame.cursor < csr.row_offsets[v + 1]) {
        const EdgeId i = frame.cursor++;
        const NodeId w = csr.neighbors[i];
        const EdgeId e = csr.edge_ids[i];
        if (e == frame.via_edge) continue;
        if (disc[w] == kNoNode) {
          edge_stack.push_back(e);
          disc[w] = low[w] = timer++;
          stack.back().tree_children++;
          stack.push_back({w, e, csr.row_offsets[w], 0});
        } else if (disc[w] < disc[v]) {
          // Back edge (including parallel copies), pushed once.
          edge_stack.push_back(e);
          low[v] = std::min(low[v], disc[w]);
        }
      } else {
        const EdgeId via = frame.via_edge;
        const int children = frame.tree_children;
        stack.pop_back();
        if (!stack.empty()) {
          const NodeId p = stack.back().v;
          low[p] = std::min(low[p], low[v]);
          if (low[v] >= disc[p]) {
            // p separates v's subtree: close the block.
            close_block(via);
            const bool p_is_root = stack.size() == 1;
            if (!p_is_root) result.is_articulation[p] = 1;
          }
        } else if (children >= 2) {
          result.is_articulation[v] = 1;  // root with >= 2 tree children
        }
      }
    }
  }
  return result;
}

bool same_block_partition(const std::vector<NodeId>& a,
                          const std::vector<NodeId>& b) {
  if (a.size() != b.size()) return false;
  std::unordered_map<NodeId, NodeId> a_to_b, b_to_a;
  for (std::size_t e = 0; e < a.size(); ++e) {
    const auto [ita, inserted_a] = a_to_b.try_emplace(a[e], b[e]);
    if (!inserted_a && ita->second != b[e]) return false;
    const auto [itb, inserted_b] = b_to_a.try_emplace(b[e], a[e]);
    if (!inserted_b && itb->second != a[e]) return false;
  }
  return true;
}

}  // namespace emc::bridges
