#include "bridges/bfs.hpp"

#include <atomic>

#include "device/primitives.hpp"

namespace emc::bridges {

BfsTree bfs(const device::Context& ctx, const graph::Csr& graph, NodeId source,
            util::PhaseTimer* phases) {
  util::ScopedPhase phase(phases, "bfs");
  const auto n = static_cast<std::size_t>(graph.num_nodes);
  BfsTree tree;
  tree.source = source;
  tree.parent.assign(n, kNoNode);
  tree.parent_edge.assign(n, kNoEdge);
  tree.level.assign(n, kNoNode);
  tree.level[source] = 0;

  std::vector<NodeId> frontier{source};
  std::vector<NodeId> next(n);
  NodeId depth = 0;
  while (!frontier.empty()) {
    ++depth;
    std::atomic<std::size_t> next_size{0};
    device::launch(ctx, frontier.size(), [&](std::size_t f) {
      const NodeId u = frontier[f];
      for (EdgeId i = graph.row_offsets[u]; i < graph.row_offsets[u + 1]; ++i) {
        const NodeId v = graph.neighbors[i];
        // Claim v exactly once: CAS its level from unvisited to this depth.
        if (device::atomic_cas(&tree.level[v], kNoNode, depth) == kNoNode) {
          tree.parent[v] = u;
          tree.parent_edge[v] = graph.edge_ids[i];
          next[next_size.fetch_add(1, std::memory_order_relaxed)] = v;
        }
      }
    });
    frontier.assign(next.begin(), next.begin() + next_size.load());
  }
  tree.num_levels = depth;
  return tree;
}

}  // namespace emc::bridges
