#include "bridges/stitch.hpp"

#include <cassert>

#include "device/primitives.hpp"

namespace emc::bridges {

std::vector<NodeId> component_representatives(const device::Context& ctx,
                                              const SpanningForest& forest) {
  const std::size_t n = forest.component.size();
  std::vector<NodeId> reps(n);
  const std::size_t k = device::copy_if_index(
      ctx, n,
      [&](std::size_t v) {
        return forest.component[v] == static_cast<NodeId>(v);
      },
      reps.data());
  assert(k == forest.num_components);
  reps.resize(k);
  return reps;
}

graph::EdgeList stitch_components(const graph::EdgeList& graph,
                                  const std::vector<NodeId>& reps) {
  graph::EdgeList augmented;
  augmented.num_nodes = graph.num_nodes;
  // reserve + insert: one allocation, one copy of the m-sized edge array
  // (copy-assignment would not be guaranteed to keep a pre-reserved
  // buffer, and assigning first reallocates on the virtual-edge appends).
  augmented.edges.reserve(graph.edges.size() +
                          (reps.empty() ? 0 : reps.size() - 1));
  augmented.edges.insert(augmented.edges.end(), graph.edges.begin(),
                         graph.edges.end());
  for (std::size_t r = 1; r < reps.size(); ++r) {
    augmented.edges.push_back({reps[0], reps[r]});
  }
  return augmented;
}

}  // namespace emc::bridges
