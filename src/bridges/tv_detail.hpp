// Shared internals of the Tarjan-Vishkin family (bridges + biconnectivity).
#pragma once

#include <cstdint>
#include <vector>

#include "device/context.hpp"
#include "graph/graph.hpp"
#include "util/types.hpp"

namespace emc::bridges::tv_detail {

/// Folds, into node_min/node_max (preinitialized with identities), the
/// min/max preorder number among every node's non-tree neighbors. This is
/// the paper's sort + segreduce step: (node, pre[other]) pairs for both
/// directions of each non-tree edge, radix-sorted by node, reduced per run.
void aggregate_non_tree_min_max(const device::Context& ctx,
                                const graph::EdgeList& graph,
                                const std::vector<std::uint8_t>& is_tree_edge,
                                const std::vector<NodeId>& pre,
                                std::vector<NodeId>& node_min,
                                std::vector<NodeId>& node_max);

}  // namespace emc::bridges::tv_detail
