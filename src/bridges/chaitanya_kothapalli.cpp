#include "bridges/chaitanya_kothapalli.hpp"

#include <atomic>
#include <cassert>

#include "device/arena.hpp"
#include "device/primitives.hpp"

namespace emc::bridges {

BridgeMask ck_marking_phase(const device::Context& ctx,
                            const graph::EdgeList& graph,
                            const std::vector<NodeId>& parent,
                            const std::vector<EdgeId>& parent_edge,
                            const std::vector<NodeId>& level,
                            const std::vector<std::uint8_t>& is_tree_edge,
                            util::PhaseTimer* phases) {
  util::ScopedPhase phase(phases, "mark_non_bridges");
  const std::size_t m = graph.edges.size();
  // marked[v] == 1 means tree edge (v, parent(v)) was visited by some walk.
  device::Arena::Scope scope(ctx.arena());
  std::uint8_t* marked = scope.get<std::uint8_t>(parent.size());
  device::fill(ctx, parent.size(), marked, std::uint8_t{0});

  device::launch(ctx, m, [&](std::size_t e) {
    if (is_tree_edge[e]) return;
    NodeId u = graph.edges[e].u;
    NodeId v = graph.edges[e].v;
    // Walk both endpoints to the same level, then in lockstep to the LCA,
    // marking every traversed tree edge. Plain byte stores race benignly
    // (all writers store 1), as in the GPU original.
    while (u != v) {
      if (level[u] < level[v]) {
        const NodeId t = u;
        u = v;
        v = t;
      }
      std::atomic_ref<std::uint8_t>(marked[u]).store(
          1, std::memory_order_relaxed);
      u = parent[u];
    }
  });

  BridgeMask is_bridge(m, 0);
  device::launch(ctx, parent.size(), [&](std::size_t v) {
    if (parent[v] != kNoNode && !marked[v]) {
      is_bridge[parent_edge[v]] = 1;
    }
  });
  return is_bridge;
}

BridgeMask find_bridges_ck(const device::Context& ctx,
                           const graph::EdgeList& graph, const graph::Csr& csr,
                           util::PhaseTimer* phases) {
  // The dual-argument contract: a Csr built from a different edge list (or
  // from this one in a different order) would silently misalign edge ids.
  assert(graph::csr_matches(graph, csr));
  const auto n = static_cast<std::size_t>(graph.num_nodes);
  if (n <= 1 || graph.edges.empty()) {
    return BridgeMask(graph.edges.size(), 0);
  }
  // Phase 1: BFS spanning tree.
  const BfsTree tree = bfs(ctx, csr, /*source=*/0, phases);
  std::vector<std::uint8_t> is_tree_edge(graph.edges.size(), 0);
  device::launch(ctx, n, [&](std::size_t v) {
    if (tree.parent_edge[v] != kNoEdge) is_tree_edge[tree.parent_edge[v]] = 1;
  });
  // Phase 2: marking walks.
  return ck_marking_phase(ctx, graph, tree.parent, tree.parent_edge,
                          tree.level, is_tree_edge, phases);
}

}  // namespace emc::bridges
