#include "bridges/hybrid.hpp"

#include <cassert>

#include "bridges/cc_spanning.hpp"
#include "bridges/chaitanya_kothapalli.hpp"
#include "core/euler_tour.hpp"
#include "device/primitives.hpp"

namespace emc::bridges {

BridgeMask find_bridges_hybrid(const device::Context& ctx,
                               const graph::EdgeList& graph,
                               util::PhaseTimer* phases) {
  const auto n = static_cast<std::size_t>(graph.num_nodes);
  if (n <= 1 || graph.edges.empty()) {
    return BridgeMask(graph.edges.size(), 0);
  }

  // Phase 1: unrooted spanning tree from connected components.
  const SpanningForest forest = cc_spanning_forest(ctx, graph, phases);
  assert(forest.num_components == 1 && "hybrid requires a connected input");

  std::vector<std::uint8_t> is_tree_edge(graph.edges.size(), 0);
  graph::EdgeList tree;
  tree.num_nodes = graph.num_nodes;
  tree.edges.resize(forest.tree_edges.size());
  device::launch(ctx, forest.tree_edges.size(), [&](std::size_t k) {
    const EdgeId e = forest.tree_edges[k];
    tree.edges[k] = graph.edges[e];
    is_tree_edge[e] = 1;
  });

  // Phases 2+3: root the tree with the Euler tour technique.
  const NodeId root = 0;
  const core::EulerTour tour = [&] {
    util::ScopedPhase phase(phases, "euler_tour");
    return core::build_euler_tour(ctx, tree, root);
  }();
  core::TreeStats stats;
  {
    util::ScopedPhase phase(phases, "levels_and_parents");
    stats = core::compute_tree_stats(ctx, tour);
  }

  // parent_edge: map each non-root node to the original edge id of its
  // parent edge.
  std::vector<EdgeId> parent_edge(n, kNoEdge);
  device::launch(ctx, forest.tree_edges.size(), [&](std::size_t k) {
    const EdgeId e = forest.tree_edges[k];
    const graph::Edge edge = graph.edges[e];
    const NodeId child = stats.parent[edge.u] == edge.v ? edge.u : edge.v;
    parent_edge[child] = e;
  });

  // Phase 4: CK marking on the rooted CC tree.
  return ck_marking_phase(ctx, graph, stats.parent, parent_edge, stats.level,
                          is_tree_edge, phases);
}

}  // namespace emc::bridges
