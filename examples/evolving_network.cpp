// An evolving road network served by an engine Session over a DynamicGraph.
//
// Scenario: a regional road network monitored for single points of failure.
// Edges fail (washouts, closures) and get built in batches; the session's
// epoch-keyed artifact cache notices each effective batch, brings the 2-ecc
// index up to date (incrementally when the delta is small — including the
// tree-link fast path when construction reconnects two regions), and
// answers dispatcher query batches: "are these two depots still on a
// redundant route?" and "how many critical road segments does a trip
// between them cross?". No-op batches (re-reported closures) never advance
// the epoch, so everything stays cached.
//
//   ./evolving_network [--side=64] [--rounds=8] [--batch=64]
#include <cstdio>
#include <vector>

#include "dynamic/dynamic_graph.hpp"
#include "engine/engine.hpp"
#include "gen/graphs.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace emc;
  util::Flags flags(argc, argv);
  const auto side =
      static_cast<NodeId>(flags.get_int("side", 64, "grid side length"));
  const auto rounds =
      static_cast<int>(flags.get_int("rounds", 8, "update rounds"));
  const auto batch_size = static_cast<std::size_t>(
      flags.get_int("batch", 64, "edges per update batch"));
  flags.finish();

  engine::Engine eng;
  const device::Context& ctx = eng.device();
  const NodeId n = side * side;
  dynamic::DynamicGraph roads(ctx, gen::road_graph(side, side, 0.92, 0.02, 11));
  engine::Session session = eng.session(roads);
  const engine::TwoEccView base = session.run(engine::TwoEcc{});
  std::printf("road network: %d junctions, %zu segments, %zu critical "
              "(bridges), %zu redundant zones\n\n",
              n, roads.num_edges(), base.num_bridges, base.num_blocks);

  util::Rng rng(3);
  const auto random_junction = [&] {
    return static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
  };
  const NodeId depot_a = random_junction();
  const NodeId depot_b = random_junction();

  for (int round = 0; round < rounds; ++round) {
    // Mostly failures, some construction; duplicates model redundant
    // reports of the same closure and cost nothing (epoch unchanged).
    std::vector<graph::Edge> failures, constructions;
    const graph::EdgeList& current = roads.snapshot(ctx);
    for (std::size_t i = 0; i < batch_size && !current.edges.empty(); ++i) {
      failures.push_back(current.edges[rng.below(current.edges.size())]);
    }
    for (std::size_t i = 0; i < batch_size / 4; ++i) {
      constructions.push_back({random_junction(), random_junction()});
    }
    const std::size_t failed = roads.erase_edges(ctx, failures);
    const std::size_t built = roads.insert_edges(ctx, constructions);

    // Dispatcher query batch between random depot pairs — the request
    // itself refreshes the session's index for the new epoch.
    engine::BridgesOnPath trips{{{depot_a, depot_b}}};
    for (int t = 1; t < 8; ++t) {
      trips.pairs.push_back({random_junction(), random_junction()});
    }
    const auto critical = session.run(trips);
    std::printf("round %d: -%zu/+%zu segments (epoch %llu)\n", round, failed,
                built, static_cast<unsigned long long>(roads.epoch()));
    if (critical[0] == kNoNode) {
      std::printf("  depot %d -> %d: DISCONNECTED\n", depot_a, depot_b);
    } else {
      const auto redundant =
          session.run(engine::Same2Ecc{{{depot_a, depot_b}}});
      std::printf("  depot %d -> %d: %d critical segment(s)%s\n", depot_a,
                  depot_b, critical[0],
                  redundant[0] ? " (redundant zone)" : "");
    }
  }

  // A no-op batch: re-reporting a closure of a segment that is already gone
  // leaves the epoch alone, so the next request is served fully cached.
  graph::Edge gone = {0, 1};
  while (roads.has_edge(gone.u, gone.v)) gone = {random_junction(), gone.u};
  const std::size_t noop = roads.erase_edges(ctx, {gone, gone});
  const std::uint64_t launches = eng.device_launches();
  session.run(engine::Same2Ecc{{{depot_a, depot_b}}});
  const auto& index = session.two_ecc_index();
  std::printf("\nno-op batch: %zu changes, %llu kernel launches to re-answer "
              "(index: %zu rebuilds, %zu incremental of which %zu "
              "tree-links)\n",
              noop,
              static_cast<unsigned long long>(eng.device_launches() - launches),
              index.rebuilds(), index.incremental_refreshes(),
              index.tree_links());
  return 0;
}
