// An evolving road network served by the connectivity oracle.
//
// Scenario: a regional road network monitored for single points of failure.
// Edges fail (washouts, closures) and get built in batches; after every
// batch the oracle refreshes its bridge-block index — skipping the rebuild
// when the batch turned out to change nothing — and answers dispatcher
// queries: "are these two depots still on a redundant route?" and "how many
// critical road segments does a trip between them cross?".
//
//   ./evolving_network [--side=64] [--rounds=8] [--batch=64]
#include <cstdio>
#include <vector>

#include "device/context.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "dynamic/oracle.hpp"
#include "gen/graphs.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace emc;
  util::Flags flags(argc, argv);
  const auto side =
      static_cast<NodeId>(flags.get_int("side", 64, "grid side length"));
  const auto rounds =
      static_cast<int>(flags.get_int("rounds", 8, "update rounds"));
  const auto batch_size = static_cast<std::size_t>(
      flags.get_int("batch", 64, "edges per update batch"));
  flags.finish();

  const device::Context ctx = device::Context::device();
  const NodeId n = side * side;
  dynamic::DynamicGraph roads(ctx,
                              gen::road_graph(side, side, 0.92, 0.02, 11));
  dynamic::ConnectivityOracle oracle;
  oracle.refresh(ctx, roads);
  std::printf("road network: %d junctions, %zu segments, %zu critical "
              "(bridges), %zu redundant zones\n\n",
              n, roads.num_edges(), oracle.num_bridges(),
              oracle.num_blocks());

  util::Rng rng(3);
  const auto random_junction = [&] {
    return static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
  };
  const NodeId depot_a = random_junction();
  const NodeId depot_b = random_junction();

  for (int round = 0; round < rounds; ++round) {
    // Mostly failures, some construction; duplicates model redundant
    // reports of the same closure and cost nothing (epoch unchanged).
    std::vector<graph::Edge> failures, constructions;
    const graph::EdgeList& current = roads.snapshot(ctx);
    for (std::size_t i = 0; i < batch_size && !current.edges.empty(); ++i) {
      failures.push_back(current.edges[rng.below(current.edges.size())]);
    }
    for (std::size_t i = 0; i < batch_size / 4; ++i) {
      constructions.push_back({random_junction(), random_junction()});
    }
    const std::size_t failed = roads.erase_edges(ctx, failures);
    const std::size_t built = roads.insert_edges(ctx, constructions);
    const bool rebuilt = oracle.refresh(ctx, roads);

    std::printf("round %d: -%zu/+%zu segments (epoch %llu, %s)\n", round,
                failed, built,
                static_cast<unsigned long long>(roads.epoch()),
                rebuilt ? "index rebuilt" : "rebuild skipped");

    // Dispatcher query batch between random depot pairs.
    std::vector<std::pair<NodeId, NodeId>> trips(8, {depot_a, depot_b});
    for (std::size_t t = 1; t < trips.size(); ++t) {
      trips[t] = {random_junction(), random_junction()};
    }
    std::vector<NodeId> critical;
    oracle.bridges_on_path_batch(ctx, trips, critical);
    if (critical[0] == kNoNode) {
      std::printf("  depot %d -> %d: DISCONNECTED\n", depot_a, depot_b);
    } else {
      std::printf("  depot %d -> %d: %d critical segment(s)%s\n", depot_a,
                  depot_b, critical[0],
                  oracle.same_2ecc(depot_a, depot_b) ? " (redundant zone)"
                                                     : "");
    }
  }

  // A no-op batch: re-reporting a closure of a segment that is already gone
  // skips the rebuild.
  graph::Edge gone = {0, 1};
  while (roads.has_edge(gone.u, gone.v)) gone = {random_junction(), gone.u};
  const std::size_t noop = roads.erase_edges(ctx, {gone, gone});
  const bool rebuilt = oracle.refresh(ctx, roads);
  std::printf("\nno-op batch: %zu changes, %s (skipped so far: %zu)\n", noop,
              rebuilt ? "rebuilt" : "rebuild skipped",
              oracle.refreshes_skipped());
  return 0;
}
