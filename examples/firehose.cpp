// A firehose of edge updates from many producers, served while it streams.
//
// Scenario: N producer threads fire insert/erase updates at the ingest
// ring as fast as they can — a telemetry firehose, not a polite writer.
// The Ingestor's batcher coalesces the interleaved streams into
// kind-homogeneous device batches, applies them on its writer thread, and
// publishes epochs at a paced cadence (every 8 batches here, not every
// batch) so apply throughput is not capped by publish cost. Meanwhile
// reader threads flood a Dispatcher with redundancy queries; their replies
// carry the epoch that answered and how far it lagged the newest applied
// state — paced publishing shows up as honest bounded staleness, never as
// a wrong answer.
//
//   ./firehose [--side=96] [--producers=4] [--updates=40000]
//              [--readers=2] [--requests=20000]
#include <chrono>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "dynamic/dynamic_graph.hpp"
#include "engine/engine.hpp"
#include "gen/graphs.hpp"
#include "ingest/ingest.hpp"
#include "serve/serve.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace emc;
  util::Flags flags(argc, argv);
  const auto side =
      static_cast<NodeId>(flags.get_int("side", 96, "grid side length"));
  const auto producers = static_cast<unsigned>(
      flags.get_int("producers", 4, "producer threads"));
  const auto updates_per_producer = static_cast<std::size_t>(
      flags.get_int("updates", 40000, "updates per producer"));
  const auto readers =
      static_cast<unsigned>(flags.get_int("readers", 2, "reader threads"));
  const auto requests_per_reader = static_cast<std::size_t>(
      flags.get_int("requests", 20000, "requests per reader"));
  flags.finish();

  engine::Engine eng({.calibrate = true});
  const NodeId n = side * side;
  dynamic::DynamicGraph roads(eng.device(),
                              gen::road_graph(side, side, 0.9, 0.02, 33));
  engine::Session session = eng.session(roads);

  // Paced publishing: the firehose applies far faster than an epoch
  // publish, so publishing every batch would stall the ring. Every 8th
  // batch (or a 2ms idle gap) refreshes what readers see; ShedOldest keeps
  // admission wait-free when the ring saturates.
  ingest::IngestorOptions wopt;
  wopt.queue_bound = 1 << 14;
  wopt.admission = ingest::Admission::kShedOldest;
  wopt.max_batch = 512;
  wopt.linger = std::chrono::microseconds(200);
  wopt.publish_every = 8;
  wopt.idle_publish = std::chrono::milliseconds(2);
  wopt.start_paused = true;
  ingest::Ingestor ingestor(eng, roads, session, wopt);

  serve::DispatcherOptions options;
  options.workers = 2;
  options.queue_bound = 4096;
  options.admission = serve::Admission::kShedOldest;
  serve::Dispatcher dispatcher(session.view(), options);
  dispatcher.attach_ingestor(ingestor);
  ingestor.resume();
  std::printf("firehose: %u producers x %zu updates vs %u readers x %zu "
              "requests on %d junctions\n",
              producers, updates_per_producer, readers, requests_per_reader,
              n);

  util::Timer timer;
  std::vector<std::thread> crew;
  for (unsigned p = 0; p < producers; ++p) {
    crew.emplace_back([&, p] {
      util::Rng rng(100 + p);
      std::vector<ingest::Update> burst(64);
      for (std::size_t sent = 0; sent < updates_per_producer;) {
        // Mostly construction with occasional demolition RUNS (a whole
        // burst of one kind): the erase stretches exercise the batcher's
        // kind segregation without chopping every batch to confetti the
        // way per-update coin flips would.
        const auto kind = rng.below(8) == 0 ? ingest::UpdateKind::kErase
                                            : ingest::UpdateKind::kInsert;
        for (ingest::Update& up : burst) {
          up.edge = {static_cast<NodeId>(rng.below(n)),
                     static_cast<NodeId>(rng.below(n))};
          up.kind = kind;
          up.producer = p;
        }
        sent += ingestor.submit(burst);
      }
    });
  }

  std::vector<std::thread> audience;
  std::vector<std::size_t> answered(readers, 0);
  std::vector<std::uint64_t> max_staleness(readers, 0);
  for (unsigned r = 0; r < readers; ++r) {
    audience.emplace_back([&, r] {
      util::Rng rng(900 + r);
      std::vector<std::future<serve::Reply<std::vector<std::uint8_t>>>>
          inflight;
      constexpr std::size_t kBurst = 128;
      for (std::size_t sent = 0; sent < requests_per_reader;) {
        inflight.clear();
        for (std::size_t i = 0; i < kBurst && sent < requests_per_reader;
             ++i, ++sent) {
          engine::Same2Ecc request;
          request.pairs.push_back({static_cast<NodeId>(rng.below(n)),
                                   static_cast<NodeId>(rng.below(n))});
          inflight.push_back(dispatcher.submit(std::move(request)));
        }
        for (auto& future : inflight) {
          const auto reply = future.get();
          if (reply.status != serve::Status::kOk) continue;
          ++answered[r];
          max_staleness[r] = std::max(max_staleness[r], reply.staleness);
        }
      }
    });
  }

  for (std::thread& t : crew) t.join();
  for (std::thread& t : audience) t.join();
  ingestor.flush();
  const double seconds = timer.seconds();

  const ingest::IngestorStats ws = ingestor.stats();
  const serve::DispatcherStats ds = dispatcher.stats();
  ingestor.stop();  // before the Dispatcher: it owns the publish hook
  dispatcher.stop();

  std::printf("%.2fs: %zu updates accepted (%0.f/s), %zu shed at the ring\n",
              seconds, ws.accepted,
              static_cast<double>(ws.accepted) / seconds, ws.shed);
  std::printf("applied in %zu batches (max %zu; %zu insert / %zu erase), "
              "%zu publishes, final epoch %llu\n",
              ws.batches, ws.max_batch, ws.insert_batches, ws.erase_batches,
              ws.publishes,
              static_cast<unsigned long long>(ws.published_epoch));
  std::size_t total_answered = 0;
  std::uint64_t worst = 0;
  for (unsigned r = 0; r < readers; ++r) {
    total_answered += answered[r];
    worst = std::max(worst, max_staleness[r]);
  }
  std::printf("readers: %zu answered (%zu shed), worst staleness %llu "
              "epochs, enqueue->publish ewma %.0fus\n",
              total_answered, ds.shed,
              static_cast<unsigned long long>(worst), ws.latency_ewma_us);
  return 0;
}
