// Concurrent serving of an evolving road network: snapshot-isolated Views
// behind a coalescing Dispatcher, with a live writer.
//
// Scenario: the evolving_network example, but under traffic. A writer
// thread keeps applying road construction batches and publishing fresh
// epoch-pinned Views; client code floods the Dispatcher with single-pair
// "is this trip still on a redundant route?" requests. The Dispatcher
// coalesces the singles into bulk answer rounds against the current View
// (old Views keep serving their epoch until released — readers never wait
// for the writer), and every reply reports the epoch that answered it.
//
//   ./serving [--side=128] [--updates=12] [--requests=20000]
#include <chrono>
#include <cstdio>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include "dynamic/dynamic_graph.hpp"
#include "engine/engine.hpp"
#include "gen/graphs.hpp"
#include "ingest/ingest.hpp"
#include "serve/serve.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace emc;
  util::Flags flags(argc, argv);
  const auto side =
      static_cast<NodeId>(flags.get_int("side", 128, "grid side length"));
  const auto updates =
      static_cast<int>(flags.get_int("updates", 12, "writer update batches"));
  const auto requests = static_cast<std::size_t>(
      flags.get_int("requests", 60000, "single-pair requests to serve"));
  flags.finish();

  // Startup calibration fits the cost model (and with it the host-vs-device
  // batch routing) to this machine instead of the committed constants.
  engine::Engine eng({.calibrate = true});
  const NodeId n = side * side;
  dynamic::DynamicGraph roads(eng.device(),
                              gen::road_graph(side, side, 0.9, 0.02, 21));
  engine::Session session = eng.session(roads);

  // The write path is an Ingestor instead of a hand-rolled writer thread:
  // producers push tagged edge updates into its bounded ring, the adaptive
  // batcher coalesces them into kind-homogeneous device batches, and the
  // ingest writer thread applies + publishes. Declared before the
  // Dispatcher (it must be stopped before the Dispatcher dies and
  // destroyed after it).
  ingest::IngestorOptions wopt;
  wopt.max_batch = 64;
  wopt.linger = std::chrono::milliseconds(1);
  wopt.start_paused = true;  // the session still seeds the Dispatcher below
  ingest::Ingestor ingestor(eng, roads, session, wopt);

  serve::DispatcherOptions options;
  options.workers = 2;
  options.coalesce_window = std::chrono::microseconds(200);
  // Overload-safe serving: a bounded lane (smaller than our burst, so the
  // flood actually sheds), oldest-first shedding weighted by client, and a
  // per-request TTL. Turned-away requests resolve with a non-Ok Status
  // instead of stretching the admitted tail — handle it below.
  options.queue_bound = 128;
  options.admission = serve::Admission::kShedOldest;
  options.default_ttl = std::chrono::milliseconds(50);
  serve::Dispatcher dispatcher(session.view(), options);
  // Publishes now flow through the dispatcher's fault-tolerant path
  // (retry/backoff, bounded staleness on persistent failure), and reply
  // staleness measures against the newest APPLIED epoch, not just the
  // newest published one.
  dispatcher.attach_ingestor(ingestor);
  ingestor.resume();
  std::printf("serving %d junctions, %zu segments (epoch %llu)\n",
              n, roads.num_edges(),
              static_cast<unsigned long long>(session.epoch()));

  // Writer: construction crews add road segments in batches — now just
  // producers pushing into the ingest ring; batching, application, and
  // epoch publication happen behind it.
  std::thread writer([&] {
    util::Rng rng(5);
    for (int u = 0; u < updates; ++u) {
      std::vector<graph::Edge> batch;
      for (int i = 0; i < 16; ++i) {
        batch.push_back({static_cast<NodeId>(rng.below(n)),
                         static_cast<NodeId>(rng.below(n))});
      }
      ingestor.insert(batch);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // Client: single-pair redundancy checks, coalesced behind our back.
  util::Rng rng(9);
  std::map<std::uint64_t, std::size_t> served_by_epoch;
  std::size_t redundant = 0, turned_away = 0;
  util::Timer timer;
  std::vector<std::future<serve::Reply<std::vector<std::uint8_t>>>> inflight;
  constexpr std::size_t kBurst = 256;
  for (std::size_t sent = 0; sent < requests;) {
    inflight.clear();
    for (std::size_t i = 0; i < kBurst && sent < requests; ++i, ++sent) {
      engine::Same2Ecc request;
      request.pairs.push_back({static_cast<NodeId>(rng.below(n)),
                               static_cast<NodeId>(rng.below(n))});
      inflight.push_back(dispatcher.submit(std::move(request)));
    }
    for (auto& future : inflight) {
      const auto reply = future.get();
      if (reply.status != serve::Status::kOk) {
        ++turned_away;  // kOverloaded / kTimeout: failed fast, retry later
        continue;
      }
      ++served_by_epoch[reply.epoch];
      redundant += reply.value[0];
    }
  }
  const double seconds = timer.seconds();
  writer.join();
  ingestor.flush();  // everything the crews pushed is applied AND published
  const serve::DispatcherStats stats = dispatcher.stats();
  const ingest::IngestorStats wstats = ingestor.stats();
  ingestor.stop();  // before the Dispatcher: it owns the publish hook
  dispatcher.stop();

  std::printf("%zu requests in %.2fs (%.0f req/s), %zu redundant trips, "
              "%zu turned away (shed %zu, expired %zu)\n",
              requests, seconds, static_cast<double>(requests) / seconds,
              redundant, turned_away, stats.shed, stats.expired);
  std::printf("%zu answer rounds (largest %zu), %zu views published, "
              "%zu epochs still pinned\n",
              stats.rounds, stats.max_round, stats.views_published,
              session.pinned_epochs());
  std::printf("ingest: %zu updates -> %zu batches -> %zu publishes "
              "(ewma enqueue->publish %.0fus)\n",
              wstats.applied, wstats.batches, wstats.publishes,
              wstats.latency_ewma_us);
  for (const auto& [epoch, count] : served_by_epoch) {
    std::printf("  epoch %llu answered %zu requests\n",
                static_cast<unsigned long long>(epoch), count);
  }
  return 0;
}
