// Phylogenetic distance computation — the application that motivated the
// naive GPU LCA algorithm of Martins et al. [38] (paper §1.1, §3.1).
//
// The distance between two species in a phylogenetic tree is
//   dist(x, y) = depth(x) + depth(y) - 2 * depth(lca(x, y)).
// We build a synthetic phylogeny, answer a large batch of pairwise distance
// queries with both the Inlabel algorithm and the naive walker, time them,
// and verify they agree — a miniature of the paper's Figure 3 story on the
// workload that started it.
#include <cstdio>
#include <vector>

#include "core/tree.hpp"
#include "device/context.hpp"
#include "gen/trees.hpp"
#include "lca/inlabel.hpp"
#include "lca/naive.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace emc;
  const NodeId num_species = argc > 1 ? std::atoi(argv[1]) : 200'000;
  const std::size_t num_pairs = 500'000;
  const device::Context ctx = device::Context::device();

  // A phylogeny is shallow and scale-free-ish; the BA tree is a good model
  // of taxonomies with a few heavily subdivided clades.
  core::ParentTree phylogeny = gen::barabasi_albert_tree(num_species, 2024);
  gen::scramble_ids(phylogeny, 2025);
  const auto pairs = gen::random_queries(num_species, num_pairs, 2026);

  std::printf("phylogeny: %d species, %zu distance queries\n\n", num_species,
              num_pairs);

  util::Timer timer;
  const lca::InlabelLca inlabel = lca::InlabelLca::build_parallel(ctx, phylogeny);
  const double inlabel_prep = timer.seconds();
  std::vector<NodeId> anc_inlabel;
  timer.reset();
  inlabel.query_batch(ctx, pairs, anc_inlabel);
  const double inlabel_query = timer.seconds();

  timer.reset();
  const lca::NaiveLca naive = lca::NaiveLca::build(ctx, phylogeny);
  const double naive_prep = timer.seconds();
  std::vector<NodeId> anc_naive;
  timer.reset();
  naive.query_batch(ctx, pairs, anc_naive);
  const double naive_query = timer.seconds();

  if (anc_inlabel != anc_naive) {
    std::fprintf(stderr, "ALGORITHM MISMATCH\n");
    return 1;
  }

  // Phylogenetic distances from the LCA answers and node depths.
  const std::vector<NodeId>& depth = inlabel.levels();
  std::vector<NodeId> distance(num_pairs);
  double mean = 0;
  for (std::size_t q = 0; q < num_pairs; ++q) {
    distance[q] = depth[pairs[q].first] + depth[pairs[q].second] -
                  2 * depth[anc_inlabel[q]];
    mean += distance[q];
  }
  mean /= static_cast<double>(num_pairs);

  std::printf("algorithm    prep_ms   query_ms\n");
  std::printf("gpu-inlabel  %-9.1f %.1f\n", inlabel_prep * 1e3,
              inlabel_query * 1e3);
  std::printf("gpu-naive    %-9.1f %.1f\n", naive_prep * 1e3,
              naive_query * 1e3);
  std::printf("\nmean phylogenetic distance: %.2f (tree is shallow, as the "
              "naive algorithm likes)\n", mean);
  std::printf("example distances: ");
  for (int i = 0; i < 5; ++i) {
    std::printf("d(%d,%d)=%d  ", pairs[i].first, pairs[i].second, distance[i]);
  }
  std::printf("\n");
  return 0;
}
