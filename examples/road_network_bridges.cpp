// Critical road segments — bridge finding on a road network (paper §4).
//
// Road networks are the adversarial case for BFS-based heuristics: huge
// diameter, m ~ n. This example builds a synthetic road network, finds its
// bridges (road segments whose closure disconnects the map) with all three
// parallel algorithms plus the DFS baseline, reports agreement and per-phase
// timings, and then decomposes the map into 2-edge-connected "resilient
// districts".
#include <algorithm>
#include <cstdio>
#include <map>

#include "bridges/chaitanya_kothapalli.hpp"
#include "bridges/dfs_bridges.hpp"
#include "bridges/hybrid.hpp"
#include "bridges/tarjan_vishkin.hpp"
#include "bridges/two_ecc.hpp"
#include "device/context.hpp"
#include "gen/graphs.hpp"
#include "graph/graph.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace emc;
  const NodeId side = argc > 1 ? std::atoi(argv[1]) : 150;
  const device::Context ctx = device::Context::device();

  const graph::EdgeList map = graph::largest_component(
      graph::simplified(gen::road_graph(side, side, 0.72, 0.04, 7)));
  const graph::Csr csr = build_csr(ctx, map);
  std::printf("road network: %d intersections, %zu road segments, "
              "diameter >= %d\n\n",
              map.num_nodes, map.num_edges(), graph::estimate_diameter(csr));

  util::PhaseTimer tv_phases, ck_phases, hy_phases;
  const auto tv = bridges::find_bridges_tarjan_vishkin(ctx, map, &tv_phases);
  const auto ck = bridges::find_bridges_ck(ctx, map, csr, &ck_phases);
  const auto hy = bridges::find_bridges_hybrid(ctx, map, &hy_phases);
  util::Timer dfs_timer;
  const auto dfs = bridges::find_bridges_dfs(csr);
  const double dfs_time = dfs_timer.seconds();

  if (tv != dfs || ck != dfs || hy != dfs) {
    std::fprintf(stderr, "ALGORITHM MISMATCH\n");
    return 1;
  }
  const std::size_t critical = bridges::count_bridges(tv);
  std::printf("critical segments (bridges): %zu of %zu (%.1f%%)\n\n", critical,
              map.num_edges(), 100.0 * critical / map.num_edges());

  auto show = [](const char* name, const util::PhaseTimer& phases) {
    std::printf("  %-11s %.1f ms  (", name, phases.total() * 1e3);
    bool first = true;
    for (const auto& [phase, secs] : phases.phases()) {
      std::printf("%s%s %.1f", first ? "" : ", ", phase.c_str(), secs * 1e3);
      first = false;
    }
    std::printf(")\n");
  };
  std::printf("timings:\n");
  show("gpu-tv", tv_phases);
  show("gpu-ck", ck_phases);
  show("gpu-hybrid", hy_phases);
  std::printf("  %-11s %.1f ms\n\n", "cpu1-dfs", dfs_time * 1e3);

  // Resilient districts: 2-edge-connected components.
  const auto districts = bridges::two_edge_components(ctx, map, tv);
  std::map<NodeId, std::size_t> sizes;
  for (const NodeId label : districts) ++sizes[label];
  std::vector<std::size_t> ordered;
  ordered.reserve(sizes.size());
  for (const auto& [label, size] : sizes) ordered.push_back(size);
  std::sort(ordered.rbegin(), ordered.rend());
  std::printf("resilient districts (2-edge-connected components): %zu\n",
              ordered.size());
  std::printf("largest districts: ");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, ordered.size()); ++i) {
    std::printf("%zu ", ordered[i]);
  }
  std::printf("intersections\n");
  return 0;
}
