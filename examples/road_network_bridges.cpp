// Critical road segments — bridge finding on a road network (paper §4),
// served through the emc::engine façade.
//
// Road networks are the adversarial case for BFS-based heuristics: huge
// diameter, m ~ n. This example binds one Session to a synthetic road
// network, forces each parallel backend (plus the DFS baseline) through the
// same Bridges request to report agreement and per-phase timings, shows
// what the auto policy would have picked, and then decomposes the map into
// 2-edge-connected "resilient districts" straight from the session's
// cached index.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "gen/graphs.hpp"
#include "graph/graph.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace emc;
  const NodeId side = argc > 1 ? std::atoi(argv[1]) : 150;
  engine::Engine eng;

  const graph::EdgeList map = graph::largest_component(
      graph::simplified(gen::road_graph(side, side, 0.72, 0.04, 7)));
  engine::Session session = eng.session(map);
  std::printf("road network: %d intersections, %zu road segments, "
              "diameter >= %d\n\n",
              map.num_nodes, map.num_edges(), session.diameter_estimate());

  // Same request, four forced backends; the session recomputes the mask
  // whenever the forced backend differs from the cached one.
  struct Run {
    engine::Backend backend;
    util::PhaseTimer phases;
    bridges::BridgeMask mask;
  };
  std::vector<Run> runs(3);
  runs[0].backend = engine::Backend::kTv;
  runs[1].backend = engine::Backend::kCk;
  runs[2].backend = engine::Backend::kHybrid;
  for (Run& run : runs) {
    run.mask = session.run(engine::Bridges{&run.phases},
                           engine::Policy::fixed(run.backend));
  }
  util::Timer dfs_timer;
  const bridges::BridgeMask dfs = session.run(
      engine::Bridges{}, engine::Policy::fixed(engine::Backend::kDfs));
  const double dfs_time = dfs_timer.seconds();

  for (const Run& run : runs) {
    if (run.mask != dfs) {
      std::fprintf(stderr, "ALGORITHM MISMATCH\n");
      return 1;
    }
  }
  const std::size_t critical = bridges::count_bridges(dfs);
  std::printf("critical segments (bridges): %zu of %zu (%.1f%%)\n\n", critical,
              map.num_edges(), 100.0 * critical / map.num_edges());

  std::printf("timings:\n");
  for (const Run& run : runs) {
    std::printf("  %-11s %.1f ms  (",
                std::string(engine::to_string(run.backend)).c_str(),
                run.phases.total() * 1e3);
    bool first = true;
    for (const auto& [phase, secs] : run.phases.phases()) {
      std::printf("%s%s %.1f", first ? "" : ", ", phase.c_str(), secs * 1e3);
      first = false;
    }
    std::printf(")\n");
  }
  std::printf("  %-11s %.1f ms\n", "dfs", dfs_time * 1e3);
  const engine::Plan plan = session.plan(engine::Bridges{});
  std::printf("  auto policy would pick: %s\n\n",
              std::string(engine::to_string(plan.chosen)).c_str());

  // Resilient districts: the session's cached 2-ecc index (built from the
  // bridge mask already computed above — marginal work only).
  const engine::TwoEccView districts = session.run(engine::TwoEcc{});
  std::vector<std::size_t> ordered(districts.num_blocks, 0);
  for (const NodeId block : *districts.labels) ++ordered[block];
  std::sort(ordered.rbegin(), ordered.rend());
  std::printf("resilient districts (2-edge-connected components): %zu\n",
              districts.num_blocks);
  std::printf("largest districts: ");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, ordered.size()); ++i) {
    std::printf("%zu ", ordered[i]);
  }
  std::printf("intersections\n");
  return 0;
}
