// The Euler tour as a general tree toolkit (paper §2).
//
// Beyond LCA and bridges, the tour-as-array representation answers many
// per-node statistics with one scan each. This example models an
// organizational hierarchy and computes, with the public EulerTour API:
//   - each manager's organization size        (subtree size)
//   - each employee's reporting-chain length  (level)
//   - total salary of every organization      (prefix sums over the tour:
//     subtree aggregate = prefix[exit] - prefix[enter] of a weighted scan)
//   - re-rooting: what the hierarchy looks like under a different CEO.
#include <cstdio>
#include <vector>

#include "core/euler_tour.hpp"
#include "device/context.hpp"
#include "device/primitives.hpp"
#include "gen/trees.hpp"
#include "util/rng.hpp"

int main() {
  using namespace emc;
  const device::Context ctx = device::Context::device();
  const NodeId n = 1'000'000;

  core::ParentTree org = gen::random_tree(n, gen::kInfiniteGrasp, 99);
  gen::scramble_ids(org, 100);
  const graph::EdgeList edges = core::tree_edges(org);

  util::PhaseTimer phases;
  const core::EulerTour tour =
      core::build_euler_tour(ctx, edges, org.root, core::RankAlgo::kWeiJaja,
                             &phases);
  const core::TreeStats stats = core::compute_tree_stats(ctx, tour, &phases);

  std::printf("org chart with %d employees; Euler tour phases:\n", n);
  for (const auto& [name, secs] : phases.phases()) {
    std::printf("  %-14s %.1f ms\n", name.c_str(), secs * 1e3);
  }

  // Salaries, then per-organization totals with ONE scan over the tour:
  // assign each *down* edge (into node v) weight salary[v], each up edge 0;
  // the subtree total of v = salary[v] + (prefix at exit - prefix at enter).
  util::Rng rng(7);
  std::vector<std::int64_t> salary(n);
  for (auto& s : salary) s = 40'000 + static_cast<std::int64_t>(rng.below(120'000));

  const std::size_t h = tour.num_half_edges();
  std::vector<std::int64_t> weight(h), prefix(h);
  device::transform(ctx, h, weight.data(), [&](std::size_t r) {
    const EdgeId e = tour.tour[r];
    return tour.goes_down(e) ? salary[tour.edge_dst[e]] : std::int64_t{0};
  });
  device::inclusive_scan(ctx, weight.data(), h, prefix.data());
  std::vector<std::int64_t> org_total(n);
  org_total[org.root] =
      prefix[h - 1] + salary[org.root];  // whole company
  device::launch(ctx, h, [&](std::size_t r) {
    const EdgeId e = tour.tour[r];
    if (!tour.goes_down(e)) return;
    const NodeId v = tour.edge_dst[e];
    const EdgeId exit = tour.rank[tour.twin(e)];
    // prefix[exit] - prefix[r] sums (r, exit]; v's own salary sits at r.
    org_total[v] = prefix[exit] - prefix[r] + salary[v];
  });

  // Spot-check against a direct accumulation for a few nodes.
  std::vector<std::int64_t> check(n);
  for (NodeId v = 0; v < n; ++v) check[v] = salary[v];
  // children-after-parents accumulation using levels:
  {
    std::vector<NodeId> order(n);
    device::iota(ctx, static_cast<std::size_t>(n), order.data());
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      return stats.level[a] > stats.level[b];
    });
    for (const NodeId v : order) {
      if (v != org.root) check[org.parent[v]] += check[v];
    }
  }
  for (NodeId v = 0; v < n; v += n / 7 + 1) {
    if (org_total[v] != check[v]) {
      std::fprintf(stderr, "subtree-sum mismatch at %d\n", v);
      return 1;
    }
  }

  std::printf("\ncompany payroll: %lld\n",
              static_cast<long long>(org_total[org.root]));
  std::printf("CEO (node %d): org size %d, chain length %d\n", org.root,
              stats.subtree_size[org.root], stats.level[org.root]);
  for (NodeId v = 1; v <= 3; ++v) {
    std::printf("employee %d: org size %d, chain length %d, org payroll "
                "%lld\n",
                v, stats.subtree_size[v], stats.level[v],
                static_cast<long long>(org_total[v]));
  }

  // Re-rooting: the same edge list, a different list head (§2.1: "if we
  // start with an unrooted tree, we choose the root by choosing the list
  // head"). No tree surgery needed.
  const NodeId new_ceo = 1;
  std::vector<NodeId> new_parent, new_level;
  core::root_tree(ctx, edges, new_ceo, new_parent, new_level);
  std::printf("\nre-rooted at node %d: old CEO now reports at depth %d\n",
              new_ceo, new_level[org.root]);
  return 0;
}
