// K-shard serving of one logical graph: a ShardedGraph routing producers
// to per-shard ingest pipelines, with cross-shard queries answered by
// connectivity stitching.
//
// Scenario: the serving example's road network has outgrown one writer
// thread. A ShardedGraph hash-partitions the junctions across K shards
// (shard_of(v) = v % K), each with its own engine, dynamic graph, ingest
// ring and dispatcher — K writer threads apply in parallel, and a segment
// whose endpoints live on different shards goes to the boundary set
// instead of any one shard. Cross-shard questions ("are these two
// junctions on a redundant route?" when they sit on different shards) are
// answered by stitching the K per-shard block graphs with the boundary
// edges into a small summary index, pinned at one epoch vector so no
// answer mixes shard states.
//
//   ./sharded_serving [--side=128] [--shards=4] [--requests=20000]
#include <chrono>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "gen/graphs.hpp"
#include "shard/shard.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace emc;
  util::Flags flags(argc, argv);
  const auto side =
      static_cast<NodeId>(flags.get_int("side", 128, "grid side length"));
  const auto shards = static_cast<std::size_t>(
      flags.get_int("shards", 4, "shard count K (0 = EMC_SHARD_COUNT)"));
  const auto requests = static_cast<std::size_t>(
      flags.get_int("requests", 20000, "cross-shard requests to serve"));
  flags.finish();

  // Seed every shard's epoch 0 with its slice of the road grid; segments
  // crossing shards land in the boundary set before any traffic flows.
  const NodeId n = side * side;
  shard::ShardedOptions options;
  options.shards = shards;
  options.ingest.max_batch = 64;
  options.ingest.linger = std::chrono::milliseconds(1);
  shard::ShardedGraph roads(n, gen::road_graph(side, side, 0.9, 0.02, 21),
                            options);
  roads.flush();
  {
    const shard::ShardedStats s = roads.stats();
    std::printf("%d junctions over %zu shards, %zu boundary segments\n", n,
                roads.shards(), s.boundary_edges);
  }

  // Writer: construction crews submit against GLOBAL junction ids; the
  // router classifies each segment and fans it out — no caller ever sees
  // local ids or picks a shard.
  std::thread writer([&] {
    util::Rng rng(5);
    for (int u = 0; u < 12; ++u) {
      std::vector<graph::Edge> batch;
      for (int i = 0; i < 16; ++i) {
        batch.push_back({static_cast<NodeId>(rng.below(n)),
                         static_cast<NodeId>(rng.below(n))});
      }
      roads.insert(batch);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // Client: redundancy checks through the façade dispatcher. Each reply is
  // answered against ONE pinned ShardedView — one consistent epoch vector
  // across all K shards — and stamps its stitch generation as the epoch.
  shard::ShardedDispatcher dispatcher(roads);
  util::Rng rng(9);
  std::size_t redundant = 0;
  std::uint64_t newest_epoch = 0;
  util::Timer timer;
  std::vector<std::future<serve::Reply<std::vector<std::uint8_t>>>> inflight;
  constexpr std::size_t kBurst = 256;
  for (std::size_t sent = 0; sent < requests;) {
    inflight.clear();
    for (std::size_t i = 0; i < kBurst && sent < requests; ++i, ++sent) {
      engine::Same2Ecc request;
      request.pairs.push_back({static_cast<NodeId>(rng.below(n)),
                               static_cast<NodeId>(rng.below(n))});
      inflight.push_back(dispatcher.submit(std::move(request)));
    }
    for (auto& future : inflight) {
      const auto reply = future.get();
      if (reply.status != serve::Status::kOk) continue;
      redundant += reply.value[0];
      newest_epoch = std::max(newest_epoch, reply.epoch);
    }
  }
  const double seconds = timer.seconds();
  writer.join();
  roads.flush();

  // The final stitched snapshot: global truth composed from K block
  // graphs + boundary edges (exact — see tests/test_shard.cpp's fuzz).
  const shard::ShardedView view = roads.view();
  std::printf("%zu requests in %.2fs (%.0f req/s), %zu redundant trips, "
              "newest stitch generation %llu\n",
              requests, seconds, static_cast<double>(requests) / seconds,
              redundant, static_cast<unsigned long long>(newest_epoch));
  std::printf("final: %zu segments, %zu components, %zu blocks, "
              "%zu bridges\n",
              view.num_edges(), view.num_components(), view.num_blocks(),
              view.num_bridges());

  const shard::ShardedStats stats = dispatcher.stats();
  std::printf("ledger: %zu submitted = %zu answered (+%zu shed/rejected/"
              "expired/cancelled/faulted), stitch %zu builds / %zu hits\n",
              stats.dispatch.submitted, stats.dispatch.answered,
              stats.dispatch.submitted - stats.dispatch.answered,
              stats.stitch_builds, stats.stitch_hits);
  for (std::size_t s = 0; s < stats.shards; ++s) {
    std::printf("  shard %zu: epoch %llu, %zu applied, staleness %llu\n", s,
                static_cast<unsigned long long>(stats.shard_epochs[s]),
                stats.per_shard_ingest[s].applied,
                static_cast<unsigned long long>(stats.shard_staleness[s]));
  }
  dispatcher.stop();
  roads.stop();
  return 0;
}
