// Quickstart: the emc::engine façade end to end — one Engine, one Session
// per graph, typed request batches, policy-driven backend selection, and
// the epoch-keyed artifact cache (static and dynamic graphs through the
// same API).
//
// Build & run:
//   cmake -B build && cmake --build build
//   ./build/quickstart
#include <cstdio>
#include <string>

#include "bridges/bridges.hpp"
#include "engine/engine.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "gen/graphs.hpp"
#include "graph/graph.hpp"

int main() {
  using namespace emc;
  engine::Engine eng;  // owns the device and multicore contexts
  std::printf("engine: device=%u multicore=%u workers\n",
              eng.device().workers(), eng.multicore().workers());

  // --- 1. A static graph session: bridges with the auto policy.
  //        The Policy's cost model (n, m, diameter estimate) picks among
  //        DFS / CK / TV / hybrid per request; plan() shows the decision.
  const graph::EdgeList road = graph::largest_component(
      graph::simplified(gen::road_graph(60, 60, 0.7, 0.05, 7)));
  engine::Session session = eng.session(road);
  const engine::Plan plan = session.plan(engine::Bridges{});
  std::printf("\nroad graph: %d nodes, %zu edges, diameter >= %d\n",
              road.num_nodes, road.num_edges(), plan.inputs.diameter);
  std::printf("policy predictions:");
  for (std::size_t b = 0; b < engine::kNumBackends; ++b) {
    std::printf(" %s=%.1fms",
                std::string(engine::to_string(engine::kFixedBackends[b])).c_str(),
                plan.predicted_seconds[b] * 1e3);
  }
  std::printf("  -> %s\n",
              std::string(engine::to_string(plan.chosen)).c_str());

  // Copy the answer: run() returns a reference into the session's artifact
  // cache, which the forced-backend run below overwrites.
  const bridges::BridgeMask auto_mask = session.run(engine::Bridges{});
  const std::size_t auto_bridges = bridges::count_bridges(auto_mask);
  // Forcing a specific backend is one Policy away — and every backend
  // must agree; the DFS baseline doubles as a cross-check here.
  const bridges::BridgeMask dfs_mask = session.run(
      engine::Bridges{}, engine::Policy::fixed(engine::Backend::kDfs));
  std::printf("bridges: %zu via %s, %zu via forced dfs (%s)\n", auto_bridges,
              std::string(engine::to_string(session.mask_backend())).c_str(),
              bridges::count_bridges(dfs_mask),
              auto_mask == dfs_mask ? "agreement" : "MISMATCH");
  const bool agreed = auto_mask == dfs_mask;

  // --- 2. Query batches on the cached 2-ecc artifact. The first batch
  //        builds the index (reusing the bridge mask the session already
  //        computed); repeats on an unchanged graph launch nothing.
  const engine::TwoEccView districts = session.run(engine::TwoEcc{});
  std::printf("\n2-edge-connected components: %zu blocks, %zu bridges\n",
              districts.num_blocks, districts.num_bridges);
  engine::Same2Ecc redundancy;
  for (NodeId v = 1; v <= 5; ++v) redundancy.pairs.push_back({0, v * 100});
  const auto redundant = session.run(redundancy);
  for (std::size_t q = 0; q < redundancy.pairs.size(); ++q) {
    std::printf("  two edge-disjoint paths %d <-> %d: %s\n",
                redundancy.pairs[q].first, redundancy.pairs[q].second,
                redundant[q] ? "yes" : "no");
  }

  // --- 3. The SAME code path serves a live graph: bind a session to a
  //        DynamicGraph and the epoch key tracks its update batches (small
  //        deltas are replayed incrementally by the cached index).
  dynamic::DynamicGraph live(eng.device(), road);
  engine::Session dyn = eng.session(live);
  engine::BridgesOnPath trip{{{0, road.num_nodes - 1}}};
  const auto before = dyn.run(trip);
  live.insert_edges(eng.device(), {{0, road.num_nodes - 1}});
  const auto after = dyn.run(trip);
  std::printf("\ndynamic: critical segments on the 0 -> %d trip: %d, then %d "
              "after building a direct road\n",
              road.num_nodes - 1, before[0], after[0]);

  // --- 4. LcaBatch: LCA queries on the session's cached rooted spanning
  //        forest (the Euler tour + inlabel artifacts), kNoNode across
  //        components.
  const auto meets =
      session.run(engine::LcaBatch{{{5, 9}, {100, 2000}, {17, 17}}});
  std::printf("\nspanning-forest LCA: lca(5,9)=%d lca(100,2000)=%d "
              "lca(17,17)=%d\n", meets[0], meets[1], meets[2]);

  std::printf("\nengine stats: %zu requests, %zu artifact builds, %zu hits\n",
              eng.stats().requests, eng.stats().artifact_builds,
              eng.stats().artifact_hits);
  return agreed && after[0] == 0 ? 0 : 1;
}
