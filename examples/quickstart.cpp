// Quickstart: the Euler tour technique end to end on a small tree, followed
// by the two headline applications (LCA queries and bridge finding).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "bridges/dfs_bridges.hpp"
#include "bridges/tarjan_vishkin.hpp"
#include "core/euler_tour.hpp"
#include "core/tree.hpp"
#include "device/context.hpp"
#include "gen/graphs.hpp"
#include "gen/trees.hpp"
#include "lca/inlabel.hpp"

int main() {
  using namespace emc;
  const device::Context ctx = device::Context::device();
  std::printf("device context: %u workers\n", ctx.workers());

  // --- 1. Euler tour on the example tree from the paper's Figure 1:
  //        root 0 with children {2, 3, 4}; 2 has children {1, 5}.
  graph::EdgeList tree;
  tree.num_nodes = 6;
  tree.edges = {{0, 2}, {2, 1}, {0, 3}, {0, 4}, {2, 5}};
  const core::EulerTour tour = core::build_euler_tour(ctx, tree, /*root=*/0);
  const core::TreeStats stats = core::compute_tree_stats(ctx, tour);
  std::printf("\nFigure 1 tree, per node (preorder, subtree size, level):\n");
  for (NodeId v = 0; v < tree.num_nodes; ++v) {
    std::printf("  node %d: pre=%d size=%d level=%d\n", v, stats.preorder[v],
                stats.subtree_size[v], stats.level[v]);
  }

  // --- 2. LCA with the Inlabel algorithm on a 100k-node random tree.
  core::ParentTree random = gen::random_tree(100'000, gen::kInfiniteGrasp, 42);
  gen::scramble_ids(random, 43);
  const lca::InlabelLca lca = lca::InlabelLca::build_parallel(ctx, random);
  const auto queries = gen::random_queries(random.num_nodes(), 5, 44);
  std::vector<NodeId> answers;
  lca.query_batch(ctx, queries, answers);
  std::printf("\nLCA on a 100k-node random tree:\n");
  for (std::size_t q = 0; q < queries.size(); ++q) {
    std::printf("  lca(%d, %d) = %d\n", queries[q].first, queries[q].second,
                answers[q]);
  }

  // --- 3. Bridges with Tarjan-Vishkin on a small road-like graph, checked
  //        against the sequential DFS baseline.
  graph::EdgeList road = graph::largest_component(
      graph::simplified(gen::road_graph(60, 60, 0.7, 0.05, 7)));
  const auto tv = bridges::find_bridges_tarjan_vishkin(ctx, road);
  const auto dfs = bridges::find_bridges_dfs(graph::build_csr(ctx, road));
  std::printf("\nBridges in a %d-node road graph with %zu edges:\n",
              road.num_nodes, road.num_edges());
  std::printf("  Tarjan-Vishkin: %zu bridges\n", bridges::count_bridges(tv));
  std::printf("  DFS baseline:   %zu bridges (%s)\n",
              bridges::count_bridges(dfs),
              tv == dfs ? "agreement" : "MISMATCH");
  return tv == dfs ? 0 : 1;
}
