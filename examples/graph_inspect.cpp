// graph_inspect — run the full analysis pipeline on a graph file, through
// the emc::engine façade.
//
// Accepts the formats the paper's datasets ship in (DIMACS .gr, SNAP edge
// lists) plus the native "n m" edge list; with no argument it analyses a
// built-in generated road network so the example is runnable offline.
//
//   ./graph_inspect [path/to/graph]
//
// Pipeline (paper §4.2-§4.3): simplify → largest connected component →
// statistics → bridges (policy-picked backend, cross-checked against the
// forced DFS baseline) → biconnectivity (blocks + articulation points) →
// 2-edge-connected components from the session's cached index.
#include <cstdio>
#include <string>

#include "bridges/biconnectivity.hpp"
#include "engine/engine.hpp"
#include "gen/graphs.hpp"
#include "graph/graph.hpp"
#include "io/io.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace emc;
  engine::Engine eng;

  graph::EdgeList raw;
  if (argc > 1) {
    const auto loaded = io::load_graph_file(argv[1]);
    if (!loaded) {
      std::fprintf(stderr, "error reading %s (line %zu): %s\n", argv[1],
                   loaded.error.line, loaded.error.message.c_str());
      return 2;
    }
    raw = std::move(*loaded.value);
    std::printf("loaded %s: %d nodes, %zu edges (raw)\n", argv[1],
                raw.num_nodes, raw.num_edges());
  } else {
    raw = gen::road_graph(120, 120, 0.72, 0.04, 42);
    std::printf("no input file; using a generated road network\n");
  }

  const graph::EdgeList g = graph::largest_component(graph::simplified(raw));
  engine::Session session = eng.session(g);
  std::printf("largest component: %d nodes, %zu edges, diameter >= %d\n\n",
              g.num_nodes, g.num_edges(), session.diameter_estimate());
  if (g.num_edges() == 0) return 0;
  session.num_components();  // input prep outside the timers below

  util::Timer timer;
  const bridges::BridgeMask auto_mask = session.run(engine::Bridges{});
  const double auto_time = timer.seconds();
  const engine::Backend picked = session.mask_backend();
  timer.reset();
  const bridges::BridgeMask dfs = session.run(
      engine::Bridges{}, engine::Policy::fixed(engine::Backend::kDfs));
  const double dfs_time = timer.seconds();
  if (auto_mask != dfs) {
    std::fprintf(stderr, "backend disagreement — please report\n");
    return 1;
  }
  std::printf("bridges: %zu  (auto picked %s: %.1f ms, DFS cross-check "
              "%.1f ms)\n",
              bridges::count_bridges(dfs),
              std::string(engine::to_string(picked)).c_str(), auto_time * 1e3,
              dfs_time * 1e3);

  timer.reset();
  const auto bic = bridges::biconnectivity_tv(eng.device(), g);
  std::size_t articulations = 0;
  for (const auto a : bic.is_articulation) articulations += a;
  std::printf("blocks: %zu, articulation points: %zu  (%.1f ms)\n",
              bic.num_blocks, articulations, timer.seconds() * 1e3);

  const engine::TwoEccView tecc = session.run(engine::TwoEcc{});
  std::printf("2-edge-connected components: %zu\n", tecc.num_blocks);
  return 0;
}
