// graph_inspect — run the full analysis pipeline on a graph file.
//
// Accepts the formats the paper's datasets ship in (DIMACS .gr, SNAP edge
// lists) plus the native "n m" edge list; with no argument it analyses a
// built-in generated road network so the example is runnable offline.
//
//   ./graph_inspect [path/to/graph]
//
// Pipeline (paper §4.2-§4.3): simplify → largest connected component →
// statistics → bridges (TV, cross-checked with DFS) → biconnectivity
// (blocks + articulation points) → 2-edge-connected components.
#include <cstdio>
#include <set>

#include "bridges/biconnectivity.hpp"
#include "bridges/dfs_bridges.hpp"
#include "bridges/tarjan_vishkin.hpp"
#include "bridges/two_ecc.hpp"
#include "device/context.hpp"
#include "gen/graphs.hpp"
#include "graph/graph.hpp"
#include "io/io.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace emc;
  const device::Context ctx = device::Context::device();

  graph::EdgeList raw;
  if (argc > 1) {
    const auto loaded = io::load_graph_file(argv[1]);
    if (!loaded) {
      std::fprintf(stderr, "error reading %s (line %zu): %s\n", argv[1],
                   loaded.error.line, loaded.error.message.c_str());
      return 2;
    }
    raw = std::move(*loaded.value);
    std::printf("loaded %s: %d nodes, %zu edges (raw)\n", argv[1],
                raw.num_nodes, raw.num_edges());
  } else {
    raw = gen::road_graph(120, 120, 0.72, 0.04, 42);
    std::printf("no input file; using a generated road network\n");
  }

  const graph::EdgeList g = graph::largest_component(graph::simplified(raw));
  const graph::Csr csr = build_csr(ctx, g);
  std::printf("largest component: %d nodes, %zu edges, diameter >= %d\n\n",
              g.num_nodes, g.num_edges(), graph::estimate_diameter(csr));
  if (g.num_edges() == 0) return 0;

  util::Timer timer;
  const auto tv = bridges::find_bridges_tarjan_vishkin(ctx, g);
  const double tv_time = timer.seconds();
  timer.reset();
  const auto dfs = bridges::find_bridges_dfs(csr);
  const double dfs_time = timer.seconds();
  if (tv != dfs) {
    std::fprintf(stderr, "TV/DFS disagreement — please report\n");
    return 1;
  }
  std::printf("bridges: %zu  (TV %.1f ms, DFS cross-check %.1f ms)\n",
              bridges::count_bridges(tv), tv_time * 1e3, dfs_time * 1e3);

  timer.reset();
  const auto bic = bridges::biconnectivity_tv(ctx, g);
  std::size_t articulations = 0;
  for (const auto a : bic.is_articulation) articulations += a;
  std::printf("blocks: %zu, articulation points: %zu  (%.1f ms)\n",
              bic.num_blocks, articulations, timer.seconds() * 1e3);

  const auto tecc = bridges::two_edge_components(ctx, g, tv);
  const std::set<NodeId> districts(tecc.begin(), tecc.end());
  std::printf("2-edge-connected components: %zu\n", districts.size());
  return 0;
}
