// Single-point-of-failure watch over a road network: the four vertex-
// connectivity request families end to end.
//
// Scenario: an operations desk watches a road grid for fragility. The
// Articulations mask lists every junction whose failure would split its
// component (the single points of failure); SameBcc checks whether a
// critical depot pair survives ANY one junction failing between them
// (two vertex-disjoint routes); BfsLevels reports hop distance from the
// depot to each critical site (one traversal serves every same-source
// query); CcMembership partitions the sites into reachable groups. All
// four are answered from the same epoch-keyed artifact cache the bridge
// families use — the BCC index is built once on first demand, then every
// query is a table lookup. The same burst is then replayed through a
// serve::Dispatcher to show the families riding the coalescing lanes.
//
//   ./articulation_watch [--side=96] [--sites=12]
#include <cstdio>
#include <future>
#include <utility>
#include <vector>

#include "engine/engine.hpp"
#include "gen/graphs.hpp"
#include "graph/graph.hpp"
#include "serve/serve.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace emc;
  util::Flags flags(argc, argv);
  const auto side =
      static_cast<NodeId>(flags.get_int("side", 96, "grid side length"));
  const auto sites = static_cast<std::size_t>(
      flags.get_int("sites", 12, "critical sites to audit"));
  flags.finish();

  engine::Engine eng;
  const graph::EdgeList g = gen::road_graph(side, side, 0.74, 0.03, 4051);
  engine::Session session = eng.session(g);
  std::printf("road network: %d nodes, %zu edges, %zu components\n",
              g.num_nodes, g.edges.size(), session.num_components());

  // --- the fragility map: every single point of failure, one bulk build.
  const std::vector<std::uint8_t> cuts = session.run(engine::Articulations{});
  std::size_t num_cuts = 0;
  for (const std::uint8_t c : cuts) num_cuts += c;
  std::printf("articulation junctions: %zu (%.1f%% of nodes)\n", num_cuts,
              100.0 * static_cast<double>(num_cuts) / g.num_nodes);

  // --- audit depot -> site redundancy: SameBcc == two vertex-disjoint
  // routes (no single junction failure can separate them).
  const NodeId depot = g.num_nodes / 2;
  util::Rng rng(7);
  std::vector<std::pair<NodeId, NodeId>> audit;
  for (std::size_t i = 0; i < sites; ++i) {
    audit.push_back({depot, static_cast<NodeId>(rng.below(g.num_nodes))});
  }
  const auto redundant = session.run(engine::SameBcc{audit});
  const auto hops = session.run(engine::BfsLevels{audit});
  engine::CcMembership membership;
  for (const auto& [d, site] : audit) membership.nodes.push_back(site);
  const auto group = session.run(membership);

  std::printf("\n%-10s %-10s %-12s %-6s\n", "site", "reachable", "redundant",
              "hops");
  for (std::size_t i = 0; i < audit.size(); ++i) {
    const bool reachable = hops[i] != kNoNode;
    std::printf("%-10d %-10s %-12s ", audit[i].second,
                reachable ? "yes" : "NO",
                redundant[i] != 0 ? "2-disjoint" : "fragile");
    if (reachable) {
      std::printf("%-6d\n", hops[i]);
    } else {
      std::printf("-     (component label %d vs depot's)\n", group[i]);
    }
  }

  // --- the same audit as traffic: the families ride dispatcher lanes,
  // single-pair submissions coalescing into bulk rounds (repeated pairs
  // are answered once per round by the coalescer's dedup cache).
  serve::Dispatcher dispatcher(session.view(), {.workers = 2});
  std::vector<std::future<serve::Reply<std::vector<std::uint8_t>>>> singles;
  for (int repeat = 0; repeat < 4; ++repeat) {  // a Zipf-ish hot set
    for (const auto& pair : audit) {
      singles.push_back(dispatcher.submit(engine::SameBcc{{pair}}));
    }
  }
  auto mask = dispatcher.submit(engine::Articulations{});
  std::size_t agree = 0;
  for (std::size_t i = 0; i < singles.size(); ++i) {
    agree += singles[i].get().value[0] == redundant[i % audit.size()] ? 1 : 0;
  }
  const auto mask_reply = mask.get();
  dispatcher.stop();
  const serve::DispatcherStats stats = dispatcher.stats();
  std::printf("\nserved %zu singles in %zu rounds (%zu dedup-cache hits), "
              "%zu/%zu agree with the session; broadcast mask epoch %llu\n",
              singles.size(), stats.rounds, stats.coalesce_cache_hits, agree,
              singles.size(),
              static_cast<unsigned long long>(mask_reply.epoch));
  return agree == singles.size() ? 0 : 1;
}
