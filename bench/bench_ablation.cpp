// Ablation benchmarks for the design decisions DESIGN.md calls out.
//
//  A1  tour-as-array vs tour-as-list (§2.2): k prefix sums over an Euler
//      tour, done (a) with one list ranking + k array scans, vs (b) k
//      list-prefix computations on the linked tour.
//  A2  Wei-JáJá vs Wyllie pointer jumping as the one list ranking inside
//      the Euler tour construction.
//  A3  naive-LCA level preprocessing: 5 chained jumps per barrier (paper)
//      vs 1 (textbook pointer jumping).
//  A4  CK spanning tree choice on a road graph: BFS tree (CK) vs CC tree +
//      Euler rooting (hybrid) vs TV — isolating why hybrid never wins.
#include <cstdio>

#include "common.hpp"
#include "core/euler_tour.hpp"
#include "engine/engine.hpp"
#include "device/primitives.hpp"
#include "gen/graphs.hpp"
#include "gen/trees.hpp"
#include "lca/naive.hpp"
#include "listrank/listrank.hpp"

int main(int argc, char** argv) {
  using namespace emc;
  util::Flags flags(argc, argv);
  const auto n64 = flags.get_int("nodes", 1 << 19, "tree size");
  const auto scans = static_cast<int>(
      flags.get_int("scans", 8, "prefix sums per tour in A1"));
  flags.finish();
  const auto n = static_cast<NodeId>(n64);

  const bench::Contexts ctx = bench::make_contexts();
  core::ParentTree ptree = gen::random_tree(n, gen::kInfiniteGrasp, 3);
  gen::scramble_ids(ptree, 4);
  const graph::EdgeList tedges = core::tree_edges(ptree);

  // ---------------------------------------------------------------- A1
  {
    const core::EulerTour tour =
        core::build_euler_tour(ctx.gpu, tedges, ptree.root);
    const std::size_t h = tour.num_half_edges();
    std::vector<std::int64_t> weights(h), out64(h);
    for (std::size_t e = 0; e < h; ++e) weights[e] = tour.goes_down(e) ? 1 : -1;

    util::Timer timer;
    std::vector<std::int64_t> by_rank(h);
    for (int k = 0; k < scans; ++k) {
      device::gather(ctx.gpu, weights.data(), tour.tour.data(), h,
                     by_rank.data());
      device::inclusive_scan(ctx.gpu, by_rank.data(), h, out64.data());
    }
    const double array_time = timer.seconds();

    timer.reset();
    for (int k = 0; k < scans; ++k) {
      listrank::prefix_wei_jaja(ctx.gpu, tour.succ, tour.head, weights, out64);
    }
    const double list_time = timer.seconds();
    std::printf("A1 tour-as-array vs tour-as-list (%d prefix sums, %zu "
                "elements):\n  array scans: %.3fs   list prefixes: %.3fs   "
                "(list/array = %.2fx)\n\n",
                scans, h, array_time, list_time, list_time / array_time);
  }

  // ---------------------------------------------------------------- A2
  {
    util::Timer timer;
    core::build_euler_tour(ctx.gpu, tedges, ptree.root,
                           core::RankAlgo::kWeiJaja);
    const double wei = timer.seconds();
    timer.reset();
    core::build_euler_tour(ctx.gpu, tedges, ptree.root,
                           core::RankAlgo::kWyllie);
    const double wyllie = timer.seconds();
    std::printf("A2 Euler tour construction by ranking algorithm:\n"
                "  wei-jaja: %.3fs   wyllie: %.3fs   (wyllie/wei-jaja = "
                "%.2fx)\n\n",
                wei, wyllie, wyllie / wei);
  }

  // ---------------------------------------------------------------- A3
  {
    // Deep-ish tree so the jumping rounds matter.
    core::ParentTree deep = gen::random_tree(n, NodeId{100}, 5);
    gen::scramble_ids(deep, 6);
    util::Timer timer;
    lca::NaiveLca::build(ctx.gpu, deep, /*jumps_per_round=*/5);
    const double batched = timer.seconds();
    timer.reset();
    lca::NaiveLca::build(ctx.gpu, deep, /*jumps_per_round=*/2);
    const double plain = timer.seconds();
    std::printf("A3 naive-LCA level preprocessing (deep tree):\n"
                "  5 jumps/barrier: %.3fs   2 jumps/barrier (textbook "
                "doubling): %.3fs   (2/5 = %.2fx)\n\n",
                batched, plain, plain / batched);
  }

  // ---------------------------------------------------------------- A4
  {
    const graph::EdgeList road = graph::largest_component(graph::simplified(
        gen::road_graph(180, 180, 0.72, 0.04, 7)));
    engine::Engine eng;
    engine::Session session = eng.session(road);
    session.csr();
    session.num_components();  // input prep outside the phase timers
    util::PhaseTimer ck_phases, hy_phases, tv_phases;
    session.run(engine::Bridges{&ck_phases},
                engine::Policy::fixed(engine::Backend::kCk));
    session.run(engine::Bridges{&hy_phases},
                engine::Policy::fixed(engine::Backend::kHybrid));
    session.run(engine::Bridges{&tv_phases},
                engine::Policy::fixed(engine::Backend::kTv));
    std::printf("A4 spanning-tree choice on a road graph (%d nodes):\n",
                road.num_nodes);
    auto show = [](const char* name, const util::PhaseTimer& phases) {
      std::printf("  %-10s total %.1fms (", name, phases.total() * 1e3);
      bool first = true;
      for (const auto& [phase, secs] : phases.phases()) {
        std::printf("%s%s=%.1f", first ? "" : " ", phase.c_str(), secs * 1e3);
        first = false;
      }
      std::printf(")\n");
    };
    show("gpu-ck", ck_phases);
    show("gpu-hybrid", hy_phases);
    show("gpu-tv", tv_phases);
  }
  return 0;
}
