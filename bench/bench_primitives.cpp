// Microbenchmarks of the device primitives (google-benchmark).
//
// The headline measurement motivates the paper's §2.2 optimization: an
// array scan is far faster than a list ranking of the same length (the
// paper cites a 7-8x gap on GPU), so an Euler tour should be converted to
// an array once and scanned thereafter.
//
// Besides the console table, every run appends machine-readable rows to
// BENCH_primitives.json — [{"op", "n", "context", "ns_per_elem"}, ...] — so
// the primitive-throughput trajectory is tracked across PRs. Benchmark
// names follow "op/context/n" to make the rows self-describing.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "device/context.hpp"
#include "device/primitives.hpp"
#include "device/sort.hpp"
#include "listrank/listrank.hpp"
#include "util/rng.hpp"

namespace {

using namespace emc;

const device::Context& device_ctx() {
  static device::Context context = device::Context::device();
  return context;
}

const device::Context& cpu1_ctx() {
  static device::Context context = device::Context::sequential();
  return context;
}

std::pair<std::vector<EdgeId>, EdgeId> random_list(std::size_t n) {
  util::Rng rng(n);
  std::vector<EdgeId> order(n);
  std::iota(order.begin(), order.end(), EdgeId{0});
  for (std::size_t i = n; i > 1; --i) std::swap(order[i - 1], order[rng.below(i)]);
  std::vector<EdgeId> next(n, kNoEdge);
  for (std::size_t i = 0; i + 1 < n; ++i) next[order[i]] = order[i + 1];
  return {next, order[0]};
}

template <const device::Context& (*Ctx)()>
void BM_ArrayScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const device::Context& ctx = Ctx();
  std::vector<std::int64_t> in(n, 1), out(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        device::inclusive_scan(ctx, in.data(), n, out.data()));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ArrayScan<device_ctx>)
    ->Name("scan_i64/device")
    ->Arg(1 << 16)
    ->Arg(1 << 20);
BENCHMARK(BM_ArrayScan<cpu1_ctx>)->Name("scan_i64/cpu1")->Arg(1 << 20);

void BM_ArrayScanNode(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const device::Context& ctx = device_ctx();
  std::vector<NodeId> in(n, 1), out(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        device::inclusive_scan(ctx, in.data(), n, out.data()));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ArrayScanNode)->Name("scan_i32/device")->Arg(1 << 20);

void BM_ExclusiveScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const device::Context& ctx = device_ctx();
  std::vector<std::int64_t> in(n, 1), out(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        device::exclusive_scan(ctx, in.data(), n, out.data()));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExclusiveScan)->Name("exscan_i64/device")->Arg(1 << 20);

void BM_ListRankSequential(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto [next, head] = random_list(n);
  std::vector<EdgeId> rank;
  for (auto _ : state) listrank::rank_sequential(next, head, rank);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ListRankSequential)
    ->Name("listrank_seq/cpu1")
    ->Arg(1 << 16)
    ->Arg(1 << 20);

void BM_ListRankWyllie(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto [next, head] = random_list(n);
  std::vector<EdgeId> rank;
  for (auto _ : state) listrank::rank_wyllie(device_ctx(), next, head, rank);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ListRankWyllie)
    ->Name("listrank_wyllie/device")
    ->Arg(1 << 16)
    ->Arg(1 << 20);

void BM_ListRankWeiJaja(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto [next, head] = random_list(n);
  std::vector<EdgeId> rank;
  for (auto _ : state) listrank::rank_wei_jaja(device_ctx(), next, head, rank);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ListRankWeiJaja)
    ->Name("listrank_weijaja/device")
    ->Arg(1 << 16)
    ->Arg(1 << 20);

void BM_RadixSortPairs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(n);
  std::vector<std::uint64_t> keys(n);
  std::vector<std::int32_t> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = rng();
    values[i] = static_cast<std::int32_t>(i);
  }
  for (auto _ : state) {
    auto k = keys;
    auto v = values;
    device::sort_pairs(device_ctx(), k, v);
    benchmark::DoNotOptimize(k.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RadixSortPairs)
    ->Name("sort_pairs/device")
    ->Arg(1 << 16)
    ->Arg(1 << 20);

template <const device::Context& (*Ctx)()>
void BM_Reduce(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const device::Context& ctx = Ctx();
  std::vector<std::int64_t> in(n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(device::reduce_sum(ctx, in.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Reduce<device_ctx>)->Name("reduce_i64/device")->Arg(1 << 20);
BENCHMARK(BM_Reduce<cpu1_ctx>)->Name("reduce_i64/cpu1")->Arg(1 << 20);

void BM_CopyIf(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint32_t> out(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(device::copy_if_index(
        device_ctx(), n, [](std::size_t i) { return i % 3 == 0; },
        out.data()));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CopyIf)->Name("copy_if/device")->Arg(1 << 20);

void BM_Gather(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(n);
  std::vector<std::int64_t> in(n, 1), out(n);
  std::vector<std::uint32_t> index(n);
  for (auto& i : index) i = static_cast<std::uint32_t>(rng.below(n));
  for (auto _ : state) {
    device::gather(device_ctx(), in.data(), index.data(), n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Gather)->Name("gather_i64/device")->Arg(1 << 20);

/// Console output plus a row per run for BENCH_primitives.json.
class JsonRowsReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      // Names are "op/context/n".
      const std::string name = run.benchmark_name();
      const std::size_t first = name.find('/');
      const std::size_t second = name.find('/', first + 1);
      if (first == std::string::npos || second == std::string::npos) continue;
      Row row;
      row.op = name.substr(0, first);
      row.context = name.substr(first + 1, second - first - 1);
      row.n = std::strtoull(name.c_str() + second + 1, nullptr, 10);
      const auto items = run.counters.find("items_per_second");
      row.ns_per_elem = items != run.counters.end() && items->second.value > 0
                            ? 1e9 / items->second.value
                            : 0.0;
      rows_.push_back(row);
    }
    ConsoleReporter::ReportRuns(reports);
  }

  bool WriteJson(const char* path) const {
    std::FILE* f = std::fopen(path, "w");
    if (!f) return false;
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& row = rows_[i];
      std::fprintf(f,
                   "  {\"op\": \"%s\", \"n\": %llu, \"context\": \"%s\", "
                   "\"ns_per_elem\": %.4f}%s\n",
                   row.op.c_str(), static_cast<unsigned long long>(row.n),
                   row.context.c_str(), row.ns_per_elem,
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    return true;
  }

 private:
  struct Row {
    std::string op;
    std::string context;
    unsigned long long n = 0;
    double ns_per_elem = 0.0;
  };
  std::vector<Row> rows_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonRowsReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!reporter.WriteJson("BENCH_primitives.json")) {
    std::fprintf(stderr, "failed to write BENCH_primitives.json\n");
    return 1;
  }
  benchmark::Shutdown();
  return 0;
}
