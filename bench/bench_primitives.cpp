// Microbenchmarks of the device primitives (google-benchmark).
//
// The headline measurement motivates the paper's §2.2 optimization: an
// array scan is far faster than a list ranking of the same length (the
// paper cites a 7-8x gap on GPU), so an Euler tour should be converted to
// an array once and scanned thereafter.
#include <benchmark/benchmark.h>

#include <numeric>
#include <vector>

#include "device/context.hpp"
#include "device/primitives.hpp"
#include "device/sort.hpp"
#include "listrank/listrank.hpp"
#include "util/rng.hpp"

namespace {

using namespace emc;

const device::Context& ctx() {
  static device::Context context = device::Context::device();
  return context;
}

std::pair<std::vector<EdgeId>, EdgeId> random_list(std::size_t n) {
  util::Rng rng(n);
  std::vector<EdgeId> order(n);
  std::iota(order.begin(), order.end(), EdgeId{0});
  for (std::size_t i = n; i > 1; --i) std::swap(order[i - 1], order[rng.below(i)]);
  std::vector<EdgeId> next(n, kNoEdge);
  for (std::size_t i = 0; i + 1 < n; ++i) next[order[i]] = order[i + 1];
  return {next, order[0]};
}

void BM_ArrayScan(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::int64_t> in(n, 1), out(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        device::inclusive_scan(ctx(), in.data(), n, out.data()));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ArrayScan)->Arg(1 << 16)->Arg(1 << 20);

void BM_ListRankSequential(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto [next, head] = random_list(n);
  std::vector<EdgeId> rank;
  for (auto _ : state) listrank::rank_sequential(next, head, rank);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ListRankSequential)->Arg(1 << 16)->Arg(1 << 20);

void BM_ListRankWyllie(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto [next, head] = random_list(n);
  std::vector<EdgeId> rank;
  for (auto _ : state) listrank::rank_wyllie(ctx(), next, head, rank);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ListRankWyllie)->Arg(1 << 16)->Arg(1 << 20);

void BM_ListRankWeiJaja(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto [next, head] = random_list(n);
  std::vector<EdgeId> rank;
  for (auto _ : state) listrank::rank_wei_jaja(ctx(), next, head, rank);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ListRankWeiJaja)->Arg(1 << 16)->Arg(1 << 20);

void BM_RadixSortPairs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(n);
  std::vector<std::uint64_t> keys(n);
  std::vector<std::int32_t> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = rng();
    values[i] = static_cast<std::int32_t>(i);
  }
  for (auto _ : state) {
    auto k = keys;
    auto v = values;
    device::sort_pairs(ctx(), k, v);
    benchmark::DoNotOptimize(k.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RadixSortPairs)->Arg(1 << 16)->Arg(1 << 20);

void BM_Reduce(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::int64_t> in(n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(device::reduce_sum(ctx(), in.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Reduce)->Arg(1 << 20);

void BM_Gather(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(n);
  std::vector<std::int64_t> in(n, 1), out(n);
  std::vector<std::uint32_t> index(n);
  for (auto& i : index) i = static_cast<std::uint32_t>(rng.below(n));
  for (auto _ : state) {
    device::gather(ctx(), in.data(), index.data(), n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Gather)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
