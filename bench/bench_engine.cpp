// The engine's backend competition: per-backend bridge cost and the auto
// policy's pick, per scenario — the Optiplan-style "backends compete per
// instance" table (ISSUE 4), and the data the CostModel defaults are
// calibrated against.
//
// Per scenario (kron / social / square road / ribbon road — spanning the
// diameter and density regimes that decide the paper's Figures 9-11), every
// fixed backend answers the same Bridges request through one Session
// (result artifacts dropped between runs, input prep cached), then the auto
// policy runs the same request. The auto row must match or beat every fixed
// backend: it runs whichever backend the cost model picks, so its time is
// the winner's time plus a cache lookup — if it does not, the model is
// miscalibrated for this machine (rerun and refit CostModel).
//
// Rows land in BENCH_engine.json (committed at repo root):
//   op   = engine_bridges/<scenario>/<backend>   (n = instance edge count)
//   op   = engine_bridges/<scenario>/auto, context = the backend it picked
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "engine/engine.hpp"
#include "gen/graphs.hpp"
#include "graph/graph.hpp"
#include "util/timer.hpp"

namespace {

using namespace emc;

/// Best-of-runs: the stable statistic for ranking backends on a noisy
/// container (averages smear scheduler hiccups into the wrong winner).
template <typename Fn>
double time_min(int runs, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < runs; ++r) {
    util::Timer timer;
    fn();
    best = std::min(best, timer.seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto runs = std::max(
      1, static_cast<int>(flags.get_int("runs", 3, "timing runs (min taken)")));
  const auto scale = flags.get_double("scale", 1.0, "instance size scale");
  const bool check = flags.get_int("check", 1, "nonzero exit if auto loses") != 0;
  flags.finish();

  engine::Engine eng;
  std::printf("# engine backend competition (device=%u multicore=%u "
              "workers)\n\n",
              eng.device().workers(), eng.multicore().workers());

  // The startup-fitted model competes alongside the committed hand table:
  // both auto rows must match or beat every fixed backend.
  engine::Policy calibrated;
  calibrated.calibrate(eng);

  const auto side = [&](int base) { return static_cast<NodeId>(base * scale); };
  std::vector<std::pair<std::string, graph::EdgeList>> scenarios;
  scenarios.emplace_back(  // small diameter, dense (Figure 9 regime)
      "kron", graph::largest_component(
                  graph::simplified(gen::kron_graph(12, 45.0, 1012))));
  scenarios.emplace_back(  // small diameter, moderate density (social class)
      "social", graph::largest_component(
                    graph::simplified(gen::social_graph(14, 10, 2))));
  scenarios.emplace_back(  // moderate diameter road grid
      "road-square", graph::largest_component(graph::simplified(
                         gen::road_graph(side(256), side(256), 0.72, 0.04, 3))));
  scenarios.emplace_back(  // huge diameter ribbon (Figure 10 road regime)
      "road-ribbon", graph::largest_component(graph::simplified(
                         gen::road_graph(side(4096), 24, 0.72, 0.04, 4))));

  util::Table table({"scenario", "nodes", "edges", "diameter", "backend",
                     "seconds", "ns/edge"});
  std::vector<bench::BenchRow> rows;
  bool auto_won_everywhere = true;

  for (const auto& [name, g] : scenarios) {
    engine::Session session = eng.session(g);
    session.csr();
    session.num_components();
    const NodeId diameter = session.diameter_estimate();  // input prep + plan

    const auto timed = [&](const engine::Policy& policy) {
      return time_min(runs, [&] {
        session.drop_results();
        session.run(engine::Bridges{}, policy);
      });
    };
    double best_fixed = 1e300;
    for (const engine::Backend backend : engine::kFixedBackends) {
      const double seconds = timed(engine::Policy::fixed(backend));
      best_fixed = std::min(best_fixed, seconds);
      const std::string label(engine::to_string(backend));
      table.add_row({name, bench::human(static_cast<std::size_t>(g.num_nodes)),
                     bench::human(g.num_edges()), std::to_string(diameter),
                     label, util::Table::num(seconds),
                     util::Table::num(seconds * 1e9 / g.num_edges(), 1)});
      rows.push_back({"engine_bridges/" + name + "/" + label, g.num_edges(),
                      label, seconds * 1e9 / g.num_edges()});
    }
    const auto auto_row = [&](const char* label, const engine::Policy& policy) {
      const double seconds = timed(policy);
      session.drop_results();
      session.run(engine::Bridges{}, policy);
      const std::string picked(engine::to_string(session.mask_backend()));
      table.add_row({name, bench::human(static_cast<std::size_t>(g.num_nodes)),
                     bench::human(g.num_edges()), std::to_string(diameter),
                     std::string(label) + "->" + picked,
                     util::Table::num(seconds),
                     util::Table::num(seconds * 1e9 / g.num_edges(), 1)});
      rows.push_back({"engine_bridges/" + name + "/" + label, g.num_edges(),
                      picked, seconds * 1e9 / g.num_edges()});
      // The acceptance bar: auto within noise of the best fixed backend.
      if (seconds > best_fixed * 1.25 + 1e-4) {
        std::printf("!! %s (%s, %.4fs) lost to the best fixed backend "
                    "(%.4fs) on %s — CostModel is miscalibrated here\n",
                    label, picked.c_str(), seconds, best_fixed, name.c_str());
        auto_won_everywhere = false;
      }
    };
    auto_row("auto", engine::Policy{});
    auto_row("auto_cal", calibrated);
  }

  table.print();
  std::printf("\nauto policy %s every benched scenario\n",
              auto_won_everywhere ? "matched or beat" : "LOST on");
  if (!bench::write_bench_json("BENCH_engine.json", rows)) {
    std::fprintf(stderr, "failed to write BENCH_engine.json\n");
    return 1;
  }
  return check && !auto_won_everywhere ? 2 : 0;
}
