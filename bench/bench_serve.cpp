// Serving throughput/latency: the Dispatcher's request coalescing against
// per-request submission, across worker counts, with and without a
// concurrent writer — the Figure 6 story run end-to-end through the
// serving stack instead of as a raw kernel microbenchmark.
//
// Per scenario (1M-node road grid / 1M-node kron), a closed-loop client
// submits bursts of single-pair Same2Ecc requests and waits them out,
// under every cell of:
//
//   route    auto (host loops on this machine) and forced-device (every
//            answer round is a bulk kernel paying the simulated launch
//            latency — the regime where coalescing is structural: K
//            launches become 1);
//   threads  dispatcher workers 1/2/4;
//   mode     coalesced (window 200us, rounds up to the burst size) vs
//            per-request (max_coalesce=1);
//   writer   off, or a thread continuously applying small insert batches,
//            refreshing the session and publishing fresh Views (readers
//            keep answering on their epoch — MVCC, no pauses).
//
// Rows land in BENCH_serve.json (committed at repo root):
//   op = serve/<scenario>/<route>/w<0|1>/t<threads>/<coal|percall>
//        (n = completed requests, ns_per_elem = ns per request)
//   op = .../p99 (ns_per_elem = p99 latency in ns)
//
// With --check 1 (default), exits nonzero if any forced-device coalesced
// cell fails to beat its per-request twin — that pair is the paper's
// batched-query prediction, and losing it means coalescing is broken.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "engine/engine.hpp"
#include "gen/graphs.hpp"
#include "graph/graph.hpp"
#include "serve/serve.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace emc;
using Clock = std::chrono::steady_clock;

struct CellResult {
  std::size_t completed = 0;
  double rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::size_t rounds = 0;
  std::size_t published = 0;
};

double percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[index];
}

CellResult run_cell(engine::Session& session, dynamic::DynamicGraph& dg,
                    const device::Context& update_ctx,
                    const engine::Policy& policy, unsigned threads,
                    bool coalesce, bool with_writer, double duration,
                    std::size_t burst, std::uint64_t seed) {
  serve::DispatcherOptions options;
  options.workers = threads;
  options.max_coalesce = coalesce ? burst : 1;
  options.coalesce_window = std::chrono::microseconds(coalesce ? 200 : 0);
  serve::Dispatcher dispatcher(session.view(policy), options);

  std::atomic<bool> stop_writer{false};
  std::thread writer;
  if (with_writer) {
    writer = std::thread([&] {
      util::Rng rng(seed ^ 0x57a7e5u);
      while (!stop_writer.load(std::memory_order_acquire)) {
        std::vector<graph::Edge> batch;
        for (int i = 0; i < 8; ++i) {
          batch.push_back({static_cast<NodeId>(rng.below(dg.num_nodes())),
                           static_cast<NodeId>(rng.below(dg.num_nodes()))});
        }
        dg.insert_edges(update_ctx, batch);
        session.refresh(policy);
        dispatcher.publish(session.view(policy));
      }
    });
  }

  const NodeId n = dg.num_nodes();
  util::Rng rng(seed);
  std::vector<double> latencies_us;
  CellResult result;
  util::Timer timer;
  std::vector<std::pair<std::future<serve::Reply<std::vector<std::uint8_t>>>,
                        Clock::time_point>>
      inflight;
  inflight.reserve(burst);
  while (timer.seconds() < duration) {
    inflight.clear();
    for (std::size_t i = 0; i < burst; ++i) {
      engine::Same2Ecc request;
      request.pairs.push_back({static_cast<NodeId>(rng.below(n)),
                               static_cast<NodeId>(rng.below(n))});
      inflight.emplace_back(dispatcher.submit(std::move(request)),
                            Clock::now());
    }
    for (auto& [future, submitted] : inflight) {
      future.get();
      latencies_us.push_back(
          std::chrono::duration<double, std::micro>(Clock::now() - submitted)
              .count());
    }
    result.completed += burst;
  }
  const double elapsed = timer.seconds();
  if (with_writer) {
    stop_writer.store(true, std::memory_order_release);
    writer.join();
  }
  const serve::DispatcherStats stats = dispatcher.stats();
  dispatcher.stop();

  std::sort(latencies_us.begin(), latencies_us.end());
  result.rps = static_cast<double>(result.completed) / elapsed;
  result.p50_us = percentile(latencies_us, 0.50);
  result.p99_us = percentile(latencies_us, 0.99);
  result.rounds = stats.rounds;
  result.published = stats.views_published;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto side = static_cast<NodeId>(
      flags.get_int("side", 1024, "road grid side (side^2 nodes)"));
  const auto kron_scale = static_cast<int>(
      flags.get_int("kron-scale", 20, "kron scale (2^scale nodes)"));
  const auto kron_factor =
      flags.get_double("kron-factor", 8.0, "kron edge factor");
  const double duration =
      flags.get_double("duration", 0.8, "seconds measured per cell");
  const auto burst = static_cast<std::size_t>(
      flags.get_int("burst", 512, "closed-loop outstanding requests"));
  const bool check = flags.get_int("check", 1,
                                   "nonzero exit if a forced-device "
                                   "coalesced cell loses") != 0;
  flags.finish();

  // Startup-calibrated policy: the CostModel constants are fitted to THIS
  // machine before any cell runs (EngineOptions::calibrate).
  engine::Engine eng({.calibrate = true});
  std::printf("# serving throughput (device=%u workers, calibrated policy)\n\n",
              eng.device().workers());

  engine::Policy auto_policy = eng.default_policy();
  engine::Policy device_route = auto_policy;
  device_route.min_device_batch = 1;

  util::Table table({"scenario", "route", "writer", "threads", "mode",
                     "req/s", "p50us", "p99us", "rounds", "published"});
  std::vector<bench::BenchRow> rows;
  bool coalescing_won = true;

  struct Scenario {
    std::string name;
    graph::EdgeList edges;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back(
      {"road", gen::road_graph(side, side, 0.72, 0.04, 1012)});
  scenarios.push_back(
      {"kron", gen::kron_graph(kron_scale, kron_factor, 1013)});

  for (Scenario& scenario : scenarios) {
    dynamic::DynamicGraph dg(eng.device(), scenario.edges);
    scenario.edges = graph::EdgeList{};  // seeded into the DCSR; free it
    engine::Session session = eng.session(dg);
    session.refresh(auto_policy);  // pay the initial artifact build once

    struct Cell {
      const char* route;
      const engine::Policy* policy;
      bool writer;
      unsigned threads;
      bool coalesce;
    };
    std::vector<Cell> cells;
    for (const bool writer : {false, true}) {
      for (const unsigned threads : {1u, 2u, 4u}) {
        for (const bool coalesce : {false, true}) {
          cells.push_back({"auto", &auto_policy, writer, threads, coalesce});
        }
      }
    }
    for (const bool coalesce : {false, true}) {  // the Figure 6 pair
      cells.push_back({"device", &device_route, false, 2u, coalesce});
    }

    std::map<std::string, double> rps_by_cell;
    for (const Cell& cell : cells) {
      const CellResult result = run_cell(
          session, dg, eng.device(), *cell.policy, cell.threads,
          cell.coalesce, cell.writer, duration, burst,
          1012 + cell.threads * 7 + (cell.coalesce ? 3 : 0));
      const std::string key = std::string(cell.route) + "/w" +
                              (cell.writer ? "1" : "0") + "/t" +
                              std::to_string(cell.threads);
      const std::string mode = cell.coalesce ? "coal" : "percall";
      rps_by_cell[key + "/" + mode] = result.rps;
      table.add_row({scenario.name, cell.route, cell.writer ? "yes" : "no",
                     std::to_string(cell.threads), mode,
                     bench::human(static_cast<std::size_t>(result.rps)),
                     util::Table::num(result.p50_us, 1),
                     util::Table::num(result.p99_us, 1),
                     std::to_string(result.rounds),
                     std::to_string(result.published)});
      const std::string op =
          "serve/" + scenario.name + "/" + key + "/" + mode;
      rows.push_back({op, result.completed, scenario.name,
                      1e9 / std::max(result.rps, 1e-9)});
      rows.push_back({op + "/p99", result.completed, scenario.name,
                      result.p99_us * 1e3});
    }
    // The structural claim: on the device route, K launches became 1.
    const double percall = rps_by_cell["device/w0/t2/percall"];
    const double coal = rps_by_cell["device/w0/t2/coal"];
    if (coal <= percall) {
      std::printf("!! coalesced device serving (%.0f req/s) lost to "
                  "per-request submission (%.0f req/s) on %s\n",
                  coal, percall, scenario.name.c_str());
      coalescing_won = false;
    }
  }

  table.print();
  std::printf("\ncoalescing %s the per-request baseline on every "
              "forced-device cell\n",
              coalescing_won ? "beat" : "LOST to");
  if (!bench::write_bench_json("BENCH_serve.json", rows)) {
    std::fprintf(stderr, "failed to write BENCH_serve.json\n");
    return 1;
  }
  return check && !coalescing_won ? 2 : 0;
}
