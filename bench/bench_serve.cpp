// Serving throughput/latency: the Dispatcher's request coalescing against
// per-request submission, across worker counts, with and without a
// concurrent writer — the Figure 6 story run end-to-end through the
// serving stack instead of as a raw kernel microbenchmark.
//
// Per scenario (1M-node road grid / 1M-node kron), a closed-loop client
// submits bursts of single-pair Same2Ecc requests and waits them out,
// under every cell of:
//
//   route    auto (host loops on this machine) and forced-device (every
//            answer round is a bulk kernel paying the simulated launch
//            latency — the regime where coalescing is structural: K
//            launches become 1);
//   threads  dispatcher workers 1/2/4;
//   mode     coalesced (window 200us, rounds up to the burst size) vs
//            per-request (max_coalesce=1);
//   writer   off, or a thread continuously applying small insert batches,
//            refreshing the session and publishing fresh Views (readers
//            keep answering on their epoch — MVCC, no pauses).
//
// Rows land in BENCH_serve.json (committed at repo root):
//   op = serve/<scenario>/<route>/w<0|1>/t<threads>/<coal|percall>
//        (n = completed requests, ns_per_elem = ns per request)
//   op = .../p99 (ns_per_elem = p99 latency in ns)
//
// A second section exercises the OVERLOAD path (ISSUE 6): bounded lanes
// with ShedOldest admission and request TTLs, driven by heavy (16k-pair)
// pre-generated requests so service cost dominates client overhead, under
//
//   qos/steady       closed-loop baseline (16 outstanding) — the healthy
//                    p99 the overload cells are compared against;
//   qos/flash        open-loop clients paced at 4x the steady cell's
//                    measured service rate (the 4x flash crowd) — sheds
//                    excess, keeps admitted p99 near steady;
//   qos/zipf         the same flood with Zipfian hot-vertex skew;
//   qos/adversarial  the flood plus a writer continuously inserting and
//                    publishing (degrade_to_host on) — measures stale
//                    serving and degradation, not just shedding.
//
// Their rows add .../shed, .../expired and .../stale counts (n = count).
//
// A third section covers the vertex-connectivity request families (ISSUE
// 10) end to end through their dispatcher lanes — single-pair SameBcc,
// single-node CcMembership, hot-source BfsLevels (a burst shares one
// traversal), and the broadcast Articulations mask — one closed-loop cell
// each on the auto route, as op = serve/<scenario>/family/<name> rows.
//
// With --check 1 (default), exits nonzero if any forced-device coalesced
// cell fails to beat its per-request twin — that pair is the paper's
// batched-query prediction, and losing it means coalescing is broken —
// or if the flash crowd's ADMITTED p99 exceeds 2x the steady p99 plus
// 3ms of slack (the load-shedding acceptance bound; the slack absorbs
// scheduler-timeslice noise on oversubscribed boxes and is invisible
// next to a real queueing blowup, which is tens of ms).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "engine/engine.hpp"
#include "gen/graphs.hpp"
#include "graph/graph.hpp"
#include "serve/serve.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace emc;
using Clock = std::chrono::steady_clock;

struct CellResult {
  std::size_t completed = 0;
  double rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::size_t rounds = 0;
  std::size_t published = 0;
};

double percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[index];
}

CellResult run_cell(engine::Session& session, dynamic::DynamicGraph& dg,
                    const device::Context& update_ctx,
                    const engine::Policy& policy, unsigned threads,
                    bool coalesce, bool with_writer, double duration,
                    std::size_t burst, std::uint64_t seed) {
  serve::DispatcherOptions options;
  options.workers = threads;
  options.max_coalesce = coalesce ? burst : 1;
  options.coalesce_window = std::chrono::microseconds(coalesce ? 200 : 0);
  serve::Dispatcher dispatcher(session.view(policy), options);

  std::atomic<bool> stop_writer{false};
  std::thread writer;
  if (with_writer) {
    writer = std::thread([&] {
      util::Rng rng(seed ^ 0x57a7e5u);
      while (!stop_writer.load(std::memory_order_acquire)) {
        std::vector<graph::Edge> batch;
        for (int i = 0; i < 8; ++i) {
          batch.push_back({static_cast<NodeId>(rng.below(dg.num_nodes())),
                           static_cast<NodeId>(rng.below(dg.num_nodes()))});
        }
        dg.insert_edges(update_ctx, batch);
        session.refresh(policy);
        dispatcher.publish(session.view(policy));
      }
    });
  }

  const NodeId n = dg.num_nodes();
  util::Rng rng(seed);
  std::vector<double> latencies_us;
  CellResult result;
  util::Timer timer;
  std::vector<std::pair<std::future<serve::Reply<std::vector<std::uint8_t>>>,
                        Clock::time_point>>
      inflight;
  inflight.reserve(burst);
  while (timer.seconds() < duration) {
    inflight.clear();
    for (std::size_t i = 0; i < burst; ++i) {
      engine::Same2Ecc request;
      request.pairs.push_back({static_cast<NodeId>(rng.below(n)),
                               static_cast<NodeId>(rng.below(n))});
      inflight.emplace_back(dispatcher.submit(std::move(request)),
                            Clock::now());
    }
    for (auto& [future, submitted] : inflight) {
      future.get();
      latencies_us.push_back(
          std::chrono::duration<double, std::micro>(Clock::now() - submitted)
              .count());
    }
    result.completed += burst;
  }
  const double elapsed = timer.seconds();
  if (with_writer) {
    stop_writer.store(true, std::memory_order_release);
    writer.join();
  }
  const serve::DispatcherStats stats = dispatcher.stats();
  dispatcher.stop();

  std::sort(latencies_us.begin(), latencies_us.end());
  result.rps = static_cast<double>(result.completed) / elapsed;
  result.p50_us = percentile(latencies_us, 0.50);
  result.p99_us = percentile(latencies_us, 0.99);
  result.rounds = stats.rounds;
  result.published = stats.views_published;
  return result;
}

struct QosResult {
  std::size_t ok = 0;
  std::size_t overloaded = 0;
  std::size_t timed_out = 0;
  double rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;  // admitted (kOk) requests only
  serve::DispatcherStats stats;
};

/// The overload harness. `flood_threads` clients submit single-pair
/// Same2Ecc requests for `duration` seconds — closed-loop (16 outstanding,
/// the healthy baseline) or open-loop at a CONSTANT arrival rate of
/// `offered_rps` requests/s split across the threads (the flash crowd;
/// wrk2-style paced arrivals, so the measurement reflects the server's
/// queueing rather than submitter threads fighting the workers for cores)
/// — against a dispatcher with a bounded ShedOldest lane and a 5ms TTL.
/// Latency is recorded when a reply resolves (FIFO opportunistic reaping),
/// and only for admitted (kOk) requests: the whole point of shedding is
/// that the OTHER requests fail fast instead of stretching this tail.
QosResult run_qos(engine::Session& session, dynamic::DynamicGraph& dg,
                  const device::Context& update_ctx,
                  const engine::Policy& policy, unsigned flood_threads,
                  bool closed_loop, bool zipf, bool adversarial,
                  double duration, double offered_rps, std::uint64_t seed) {
  serve::DispatcherOptions options;
  // A second worker only helps when it gets its own core; on a 1-CPU box
  // two always-runnable workers just preempt each other mid-round and
  // double the admitted tail.
  options.workers = std::max(1u, std::min(2u, std::thread::hardware_concurrency()));
  options.queue_bound = 16;
  options.admission = serve::Admission::kShedOldest;
  options.default_ttl = std::chrono::milliseconds(5);
  options.degrade_to_host = adversarial;
  // Cap rounds at 2 merged requests so a full lane drains as several short
  // rounds rather than one giant one — the admitted tail then measures
  // queue depth, not the service time of a maximal merge.
  options.max_coalesce = 2;
  // Host route: answer rounds stay µs-scale, so the steady/flash p99
  // comparison measures QUEUEING under overload, not which backend a
  // bigger merged round happens to pick.
  engine::Policy host_route = policy;
  host_route.min_device_batch = std::size_t{1} << 30;
  serve::Dispatcher dispatcher(session.view(host_route), options);

  std::atomic<bool> stop_writer{false};
  std::thread writer;
  if (adversarial) {
    // The adversarial cell also injects publish faults (persistent, so
    // every publish exhausts its retries and gives up), putting the
    // dispatcher into bounded-staleness degradation under real load — the
    // stale/retries columns measure that path, not a lucky fault-free run.
    util::failpoint::configure(util::failpoint::kPublish, "1+");
    writer = std::thread([&] {
      util::Rng rng(seed ^ 0xadee5u);
      while (!stop_writer.load(std::memory_order_acquire)) {
        std::vector<graph::Edge> batch;
        for (int i = 0; i < 32; ++i) {
          batch.push_back({static_cast<NodeId>(rng.below(dg.num_nodes())),
                           static_cast<NodeId>(rng.below(dg.num_nodes()))});
        }
        dg.insert_edges(update_ctx, batch);
        dispatcher.publish(session);  // full rebuild + install, no pacing
      }
    });
  }

  const NodeId n = dg.num_nodes();
  std::mutex merge_mutex;
  QosResult result;
  std::vector<double> latencies_us;
  std::vector<std::thread> floods;
  for (unsigned t = 0; t < flood_threads; ++t) {
    floods.emplace_back([&, t] {
      util::Rng rng(seed + 101 * t);
      const auto sample = [&]() -> NodeId {
        if (!zipf) return static_cast<NodeId>(rng.below(n));
        // Log-uniform rank approximates Zipf(s=1): low-numbered vertices
        // are the hot set every flood thread hammers.
        const double rank = std::pow(static_cast<double>(n), rng.uniform());
        const auto idx = static_cast<std::uint64_t>(rank) - 1;
        return static_cast<NodeId>(std::min<std::uint64_t>(idx, n - 1));
      };
      // Heavy requests, pre-generated: 16k pairs each makes SERVING a
      // request cost ~20x what SUBMITTING one does (submit is a pool
      // copy + enqueue), so a 4x-oversubscribed flood is physically
      // realizable even when clients and workers share one core — the
      // submitters' CPU share stays small and the admitted tail measures
      // the server's queueing, not core contention among clients.
      constexpr int kQosPairs = 16384;
      constexpr std::size_t kPoolSize = 32;
      std::vector<engine::Same2Ecc> pool(kPoolSize);
      for (auto& request : pool) {
        request.pairs.reserve(kQosPairs);
        for (int p = 0; p < kQosPairs; ++p) {
          request.pairs.push_back({sample(), sample()});
        }
      }
      std::size_t pool_next = 0;
      const auto make_request = [&] {
        engine::Same2Ecc request = pool[pool_next];
        pool_next = (pool_next + 1) % kPoolSize;
        return request;
      };
      std::size_t ok = 0, overloaded = 0, timed_out = 0;
      std::vector<double> lat_us;
      std::deque<std::pair<std::future<serve::Reply<std::vector<std::uint8_t>>>,
                           Clock::time_point>>
          inflight;
      const auto reap_front = [&] {
        auto& [future, submitted] = inflight.front();
        const auto reply = future.get();
        switch (reply.status) {
          case serve::Status::kOk:
            ++ok;
            lat_us.push_back(std::chrono::duration<double, std::micro>(
                                 Clock::now() - submitted)
                                 .count());
            break;
          case serve::Status::kOverloaded:
            ++overloaded;
            break;
          default:
            ++timed_out;
        }
        inflight.pop_front();
      };
      // Open loop: small bursts on a fixed-rate schedule (absolute ticks:
      // a late burst does not stretch the next interval, so the offered
      // rate holds even when the submitter itself gets preempted).
      constexpr std::size_t kBurst = 4;
      const double per_thread_rps =
          offered_rps / static_cast<double>(flood_threads);
      const auto tick = std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(static_cast<double>(kBurst) /
                                        std::max(per_thread_rps, 1.0)));
      auto next_burst = Clock::now();
      util::Timer timer;
      while (timer.seconds() < duration) {
        const std::size_t outstanding = closed_loop ? 16 : kBurst;
        for (std::size_t i = 0; i < outstanding; ++i) {
          inflight.emplace_back(dispatcher.submit(make_request()),
                                Clock::now());
        }
        if (closed_loop) {
          while (!inflight.empty()) reap_front();
        } else {
          while (!inflight.empty() &&
                 inflight.front().first.wait_for(std::chrono::seconds(0)) ==
                     std::future_status::ready) {
            reap_front();
          }
          next_burst += tick;
          std::this_thread::sleep_until(next_burst);
        }
      }
      while (!inflight.empty()) reap_front();
      const std::lock_guard<std::mutex> lk(merge_mutex);
      result.ok += ok;
      result.overloaded += overloaded;
      result.timed_out += timed_out;
      latencies_us.insert(latencies_us.end(), lat_us.begin(), lat_us.end());
    });
  }
  for (auto& flood : floods) flood.join();
  const double elapsed = duration;  // each flood thread ran this long
  if (adversarial) {
    stop_writer.store(true, std::memory_order_release);
    writer.join();
    util::failpoint::disable_all();
  }
  result.stats = dispatcher.stats();
  dispatcher.stop();

  std::sort(latencies_us.begin(), latencies_us.end());
  result.rps = static_cast<double>(result.ok) / elapsed;
  result.p50_us = percentile(latencies_us, 0.50);
  result.p99_us = percentile(latencies_us, 0.99);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto side = static_cast<NodeId>(
      flags.get_int("side", 1024, "road grid side (side^2 nodes)"));
  const auto kron_scale = static_cast<int>(
      flags.get_int("kron-scale", 20, "kron scale (2^scale nodes)"));
  const auto kron_factor =
      flags.get_double("kron-factor", 8.0, "kron edge factor");
  const double duration =
      flags.get_double("duration", 0.8, "seconds measured per cell");
  const auto burst = static_cast<std::size_t>(
      flags.get_int("burst", 512, "closed-loop outstanding requests"));
  const double qos_duration = flags.get_double(
      "qos-duration", 0.5, "seconds measured per overload cell");
  const bool check = flags.get_int("check", 1,
                                   "nonzero exit if a forced-device "
                                   "coalesced cell loses or the flash "
                                   "crowd blows the 2x admitted-p99 bound") !=
                     0;
  flags.finish();

  // Startup-calibrated policy: the CostModel constants are fitted to THIS
  // machine before any cell runs (EngineOptions::calibrate).
  engine::Engine eng({.calibrate = true});
  std::printf("# serving throughput (device=%u workers, calibrated policy)\n\n",
              eng.device().workers());

  engine::Policy auto_policy = eng.default_policy();
  engine::Policy device_route = auto_policy;
  device_route.min_device_batch = 1;

  util::Table table({"scenario", "route", "writer", "threads", "mode",
                     "req/s", "p50us", "p99us", "rounds", "published"});
  util::Table qos_table({"scenario", "mode", "ok/s", "p50us", "p99us", "shed",
                         "expired", "stale", "retries", "maxdepth"});
  util::Table family_table({"scenario", "family", "req/s"});
  std::vector<bench::BenchRow> rows;
  bool coalescing_won = true;
  bool flash_p99_ok = true;

  struct Scenario {
    std::string name;
    graph::EdgeList edges;
  };
  std::vector<Scenario> scenarios;
  scenarios.push_back(
      {"road", gen::road_graph(side, side, 0.72, 0.04, 1012)});
  scenarios.push_back(
      {"kron", gen::kron_graph(kron_scale, kron_factor, 1013)});

  for (Scenario& scenario : scenarios) {
    dynamic::DynamicGraph dg(eng.device(), scenario.edges);
    scenario.edges = graph::EdgeList{};  // seeded into the DCSR; free it
    engine::Session session = eng.session(dg);
    session.refresh(auto_policy);  // pay the initial artifact build once

    struct Cell {
      const char* route;
      const engine::Policy* policy;
      bool writer;
      unsigned threads;
      bool coalesce;
    };
    std::vector<Cell> cells;
    for (const bool writer : {false, true}) {
      for (const unsigned threads : {1u, 2u, 4u}) {
        for (const bool coalesce : {false, true}) {
          cells.push_back({"auto", &auto_policy, writer, threads, coalesce});
        }
      }
    }
    for (const bool coalesce : {false, true}) {  // the Figure 6 pair
      cells.push_back({"device", &device_route, false, 2u, coalesce});
    }

    std::map<std::string, double> rps_by_cell;
    for (const Cell& cell : cells) {
      const CellResult result = run_cell(
          session, dg, eng.device(), *cell.policy, cell.threads,
          cell.coalesce, cell.writer, duration, burst,
          1012 + cell.threads * 7 + (cell.coalesce ? 3 : 0));
      const std::string key = std::string(cell.route) + "/w" +
                              (cell.writer ? "1" : "0") + "/t" +
                              std::to_string(cell.threads);
      const std::string mode = cell.coalesce ? "coal" : "percall";
      rps_by_cell[key + "/" + mode] = result.rps;
      table.add_row({scenario.name, cell.route, cell.writer ? "yes" : "no",
                     std::to_string(cell.threads), mode,
                     bench::human(static_cast<std::size_t>(result.rps)),
                     util::Table::num(result.p50_us, 1),
                     util::Table::num(result.p99_us, 1),
                     std::to_string(result.rounds),
                     std::to_string(result.published)});
      const std::string op =
          "serve/" + scenario.name + "/" + key + "/" + mode;
      rows.push_back({op, result.completed, scenario.name,
                      1e9 / std::max(result.rps, 1e-9)});
      rows.push_back({op + "/p99", result.completed, scenario.name,
                      result.p99_us * 1e3});
    }
    // The structural claim: on the device route, K launches became 1.
    const double percall = rps_by_cell["device/w0/t2/percall"];
    const double coal = rps_by_cell["device/w0/t2/coal"];
    if (coal <= percall) {
      std::printf("!! coalesced device serving (%.0f req/s) lost to "
                  "per-request submission (%.0f req/s) on %s\n",
                  coal, percall, scenario.name.c_str());
      coalescing_won = false;
    }

    // --- the overload section (bounded lanes, shedding, degradation) ---
    struct QosCell {
      const char* mode;
      unsigned flood_threads;
      bool closed_loop;
      bool zipf;
      bool adversarial;
    };
    const QosCell qos_cells[] = {
        {"steady", 1, true, false, false},
        {"flash", 2, false, false, false},
        {"zipf", 2, false, true, false},
        {"adversarial", 2, false, false, true},
    };
    double steady_p99_us = 0.0;
    double steady_rps = 0.0;
    for (const QosCell& cell : qos_cells) {
      // 4x oversubscription is about offered LOAD, not thread count: the
      // flood cells pace their arrivals at 4x the steady cell's measured
      // service rate, so the ratio holds whether the box has 1 core or 64.
      const double offered_rps = cell.closed_loop ? 0.0 : 4.0 * steady_rps;
      const QosResult qos = run_qos(
          session, dg, eng.device(), auto_policy, cell.flood_threads,
          cell.closed_loop, cell.zipf, cell.adversarial, qos_duration,
          offered_rps, 2024 + static_cast<std::uint64_t>(cell.flood_threads));
      if (std::string(cell.mode) == "steady") steady_rps = qos.rps;
      if (std::string(cell.mode) == "steady") steady_p99_us = qos.p99_us;
      qos_table.add_row(
          {scenario.name, cell.mode,
           bench::human(static_cast<std::size_t>(qos.rps)),
           util::Table::num(qos.p50_us, 1), util::Table::num(qos.p99_us, 1),
           std::to_string(qos.stats.shed + qos.stats.rejected),
           std::to_string(qos.stats.expired),
           std::to_string(qos.stats.stale_served),
           std::to_string(qos.stats.publish_retries),
           std::to_string(qos.stats.max_queue_depth)});
      const std::string op = "serve/" + scenario.name + "/qos/" + cell.mode;
      rows.push_back({op, qos.ok, scenario.name,
                      1e9 / std::max(qos.rps, 1e-9)});
      rows.push_back({op + "/p99", qos.ok, scenario.name, qos.p99_us * 1e3});
      rows.push_back({op + "/shed", qos.stats.shed + qos.stats.rejected,
                      scenario.name, 0.0});
      rows.push_back({op + "/expired", qos.stats.expired, scenario.name, 0.0});
      if (cell.adversarial) {
        rows.push_back(
            {op + "/stale", qos.stats.stale_served, scenario.name, 0.0});
      }
      // The load-shedding acceptance bound: flooding a bounded lane must
      // not stretch the ADMITTED tail past 2x the healthy baseline. The
      // 3ms slack absorbs scheduler-timeslice noise when clients and
      // workers share cores; a real queueing blowup is tens of ms and
      // sails past it regardless.
      if (std::string(cell.mode) == "flash" &&
          qos.p99_us > 2.0 * steady_p99_us + 3000.0) {
        std::printf("!! flash-crowd admitted p99 (%.0fus) exceeded 2x the "
                    "steady p99 (%.0fus) + 3ms slack on %s\n",
                    qos.p99_us, steady_p99_us, scenario.name.c_str());
        flash_p99_ok = false;
      }
    }

    // --- the vertex-connectivity families, through their own lanes ---
    {
      serve::DispatcherOptions options;
      options.workers = 2;
      serve::Dispatcher dispatcher(session.view(auto_policy), options);
      util::Rng frng(4242);
      const NodeId n = dg.num_nodes();
      session.run(engine::Articulations{});  // BCC index warm, off the clock
      const auto family_cell = [&](const char* family, std::size_t family_burst,
                                   auto make_request) {
        std::vector<decltype(dispatcher.submit(make_request()))> inflight;
        inflight.reserve(family_burst);
        std::size_t completed = 0;
        util::Timer timer;
        while (timer.seconds() < duration * 0.5) {
          inflight.clear();
          for (std::size_t i = 0; i < family_burst; ++i) {
            inflight.push_back(dispatcher.submit(make_request()));
          }
          for (auto& future : inflight) future.get();
          completed += family_burst;
        }
        const double rps = static_cast<double>(completed) / timer.seconds();
        family_table.add_row(
            {scenario.name, family,
             bench::human(static_cast<std::size_t>(rps))});
        rows.push_back({"serve/" + scenario.name + "/family/" + family,
                        completed, scenario.name,
                        1e9 / std::max(rps, 1e-9)});
      };
      family_cell("samebcc", 64, [&] {
        return engine::SameBcc{{{static_cast<NodeId>(frng.below(n)),
                                 static_cast<NodeId>(frng.below(n))}}};
      });
      family_cell("ccmember", 64, [&] {
        return engine::CcMembership{{static_cast<NodeId>(frng.below(n))}};
      });
      // One hot source: the coalescer merges a burst into one traversal.
      family_cell("bfslevels", 16, [&] {
        return engine::BfsLevels{{{0, static_cast<NodeId>(frng.below(n))}}};
      });
      family_cell("articulations", 8,
                  [&] { return engine::Articulations{}; });
      dispatcher.stop();
    }
  }

  table.print();
  std::printf("\n# overload (bounded lanes, ShedOldest, 5ms TTL)\n\n");
  qos_table.print();
  std::printf("\n# vertex-connectivity families (auto route, closed loop)\n\n");
  family_table.print();
  std::printf("\ncoalescing %s the per-request baseline on every "
              "forced-device cell\n",
              coalescing_won ? "beat" : "LOST to");
  std::printf("flash-crowd admitted p99 %s the 2x steady bound\n",
              flash_p99_ok ? "held" : "BLEW");
  if (!bench::write_bench_json("BENCH_serve.json", rows)) {
    std::fprintf(stderr, "failed to write BENCH_serve.json\n");
    return 1;
  }
  return check && !(coalescing_won && flash_p99_ok) ? 2 : 0;
}
