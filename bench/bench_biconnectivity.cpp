// Extension benchmark: full Tarjan-Vishkin biconnectivity (blocks +
// articulation points) vs the sequential Hopcroft-Tarjan baseline.
//
// The paper evaluates only the bridge slice of the TV framework; this bench
// measures the completed framework on the same graph suite, and reports the
// marginal cost of blocks over bridges (one more CC run on the auxiliary
// graph G'').
#include <cstdio>

#include "bridge_suite.hpp"
#include "bridges/biconnectivity.hpp"
#include "common.hpp"
#include "engine/engine.hpp"

int main(int argc, char** argv) {
  using namespace emc;
  util::Flags flags(argc, argv);
  const auto kron_min = static_cast<int>(flags.get_int("kron-min", 13, ""));
  const auto kron_max = static_cast<int>(flags.get_int("kron-max", 15, ""));
  const auto scale = flags.get_double("scale", 1.0, "road grid scale");
  const auto runs = static_cast<int>(flags.get_int("runs", 1, ""));
  flags.finish();

  const bench::Contexts ctx = bench::make_contexts();
  engine::Engine eng;
  std::printf("# Extension: full TV biconnectivity vs sequential baseline\n\n");
  util::Table table({"graph", "blocks", "articulations", "cpu1_dfs_s",
                     "gpu_tv_bicc_s", "gpu_tv_bridges_s"});

  auto suite = bench::kron_suite(kron_min, kron_max, 89.0);
  auto real = bench::real_suite(scale);
  suite.insert(suite.end(), std::make_move_iterator(real.begin()),
               std::make_move_iterator(real.end()));

  for (const auto& inst : suite) {
    const auto& g = inst.graph;
    const auto csr = build_csr(ctx.gpu, g);
    const auto result = bridges::biconnectivity_tv(ctx.gpu, g);
    std::size_t articulations = 0;
    for (const auto a : result.is_articulation) articulations += a;

    const double dfs = bench::time_avg(
        runs, [&] { bridges::biconnectivity_dfs(g, csr); });
    const double tv = bench::time_avg(
        runs, [&] { bridges::biconnectivity_tv(ctx.gpu, g); });
    engine::Session session = eng.session(g);
    session.num_components();  // input prep outside the timer
    const double tv_bridges = bench::time_avg(runs, [&] {
      session.drop_results();
      session.run(engine::Bridges{},
                  engine::Policy::fixed(engine::Backend::kTv));
    });
    table.add_row({inst.name, bench::human(result.num_blocks),
                   bench::human(articulations), util::Table::num(dfs),
                   util::Table::num(tv), util::Table::num(tv_bridges)});
  }
  table.print();
  return 0;
}
