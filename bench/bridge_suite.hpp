// The generated graph suite standing in for the paper's Table 1 datasets.
//
// Original files (kron_g500, SNAP/DIMACS graphs) are not downloadable in
// this environment; each is replaced by a generator instance matched on the
// statistics the experiments depend on — density m/n, diameter class, and
// bridge abundance (see DESIGN.md §2). Sizes are scaled to container scale;
// `scale` multiplies node counts.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "gen/graphs.hpp"
#include "graph/graph.hpp"

namespace emc::bench {

struct Instance {
  std::string name;
  graph::EdgeList graph;  // simplified, largest connected component
};

inline Instance make_instance(std::string name, graph::EdgeList raw) {
  return {std::move(name),
          graph::largest_component(graph::simplified(std::move(raw)))};
}

/// Kronecker ladder (Figure 9): kron_g500-logn16..21 stand-ins. The paper's
/// instances have edge factor ~90 at scale 16; we keep the ladder shape with
/// a container-friendly edge factor.
inline std::vector<Instance> kron_suite(int min_scale, int max_scale,
                                        double edge_factor) {
  std::vector<Instance> suite;
  for (int s = min_scale; s <= max_scale; ++s) {
    suite.push_back(make_instance("kron-sim-logn" + std::to_string(s),
                                  gen::kron_graph(s, edge_factor, 1000 + s)));
  }
  return suite;
}

/// Real-world-class stand-ins (Figure 10): social/web graphs (small
/// diameter, moderate density) and road networks (huge diameter, m ~ n).
inline std::vector<Instance> real_suite(double scale) {
  const auto side = [&](int base) {
    return static_cast<NodeId>(base * scale);
  };
  std::vector<Instance> suite;
  // Social/web class (paper: wikipedia, cit-Patents, socfb, LiveJournal,
  // hollywood). Edge factors echo the originals' m/n ratios.
  suite.push_back(make_instance("web-wikipedia-sim",
                                gen::social_graph(16, 5, 1)));
  suite.push_back(make_instance("cit-patents-sim",
                                gen::social_graph(16, 9, 2)));
  suite.push_back(make_instance("socfb-sim", gen::social_graph(15, 16, 3)));
  suite.push_back(make_instance("soc-livejournal-sim",
                                gen::social_graph(15, 18, 4)));
  suite.push_back(make_instance("hollywood-sim",
                                gen::social_graph(13, 60, 5)));
  // Road class (paper: USA-road-d.E/W/CTR/USA, great-britain). m/n ~ 1.2,
  // many bridges — and crucially, diameters of 4000-9000, far larger
  // relative to n than a square grid's. Elongated grids match the paper's
  // *diameters* (the statistic that drives Figures 9-11) at reduced node
  // counts; see DESIGN.md §2.
  suite.push_back(make_instance(   // USA-road-d.E: diameter ~4K
      "road-east-sim", gen::road_graph(side(4096), 64, 0.72, 0.04, 6)));
  suite.push_back(make_instance(   // USA-road-d.W: diameter ~4K, larger n
      "road-west-sim", gen::road_graph(side(4096), 108, 0.72, 0.04, 7)));
  suite.push_back(make_instance(   // great-britain-osm: diameter ~9K
      "road-gb-sim", gen::road_graph(side(8192), 64, 0.70, 0.03, 8)));
  suite.push_back(make_instance(   // USA-road-d.CTR: diameter ~6K
      "road-ctr-sim", gen::road_graph(side(6144), 128, 0.72, 0.04, 9)));
  suite.push_back(make_instance(   // USA-road-d.USA: diameter ~9K, largest
      "road-usa-sim", gen::road_graph(side(9216), 96, 0.72, 0.04, 10)));
  return suite;
}

}  // namespace emc::bench
