// Batch-dynamic subsystem throughput: update batches vs query batches.
//
// The workload the dynamic subsystem exists for: a long-lived graph absorbs
// batches of edge insertions/deletions, the 2-edge-connectivity oracle
// rebuilds its index once per changed batch, and between updates it serves
// large batches of point queries — each query batch as ONE bulk kernel, so
// throughput is bandwidth-bound rather than launch-bound (the Figure 6
// regime). Reported per batch size:
//
//   update rows — seconds to apply the batch to the DCSR and refresh the
//     oracle (the rebuild dominates; launches shows the fixed kernel count);
//   incremental rows — refresh cost alone for small INSERT-ONLY
//     intra-component batches, where refresh() takes the delta-replay path
//     (LCA kernel + union-find contraction + block-tree rebuild) instead of
//     the full pipeline, next to the full rebuild of the same snapshot;
//   query rows  — queries/s for same_2ecc and bridges_on_path batches;
//   mix rows    — interleaved update/query rounds at a given ratio, the
//     serving steady state (insert-only rounds, so refresh() takes the
//     incremental path whenever the random batch happens to stay
//     intra-component — exactly what a server would see).
//
// Rows also land in BENCH_dynamic.json (same shape as the other BENCH
// files; n is the batch size, ns_per_elem the per-element batch cost).
#include <algorithm>
#include <cstdio>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common.hpp"
#include "device/context.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "dynamic/oracle.hpp"
#include "gen/graphs.hpp"
#include "util/rng.hpp"

namespace {

using namespace emc;

std::vector<graph::Edge> random_batch(util::Rng& rng, NodeId n,
                                      std::size_t size) {
  std::vector<graph::Edge> batch(size);
  for (auto& e : batch) {
    e.u = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
    e.v = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
  }
  return batch;
}

std::vector<std::pair<NodeId, NodeId>> random_queries(util::Rng& rng, NodeId n,
                                                      std::size_t size) {
  std::vector<std::pair<NodeId, NodeId>> queries(size);
  for (auto& [u, v] : queries) {
    u = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
    v = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
  }
  return queries;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto side = static_cast<NodeId>(
      flags.get_int("side", 1024, "base road grid is side x side nodes"));
  const auto runs = std::max(
      1, static_cast<int>(flags.get_int("runs", 3, "timing runs")));
  flags.finish();

  const device::Context ctx = device::Context::device();
  const auto n = static_cast<NodeId>(side) * side;
  std::printf("# dynamic graph: %d nodes (road-like base), %u workers\n\n",
              n, ctx.workers());

  util::Rng rng(42);
  dynamic::DynamicGraph dg(
      ctx, gen::road_graph(side, side, 0.95, 0.03, 7));
  dynamic::ConnectivityOracle oracle;
  oracle.refresh(ctx, dg);
  std::printf("base: %zu edges, %zu bridges, %zu blocks\n\n", dg.num_edges(),
              oracle.num_bridges(), oracle.num_blocks());

  util::Table table({"op", "batch", "seconds", "Melem/s", "launches"});
  std::vector<bench::BenchRow> rows;
  const auto record = [&](const std::string& op, std::size_t batch,
                          double seconds, std::uint64_t launches) {
    table.add_row({op, bench::human(batch), std::to_string(seconds),
                   std::to_string(batch / seconds / 1e6),
                   std::to_string(launches)});
    rows.push_back({op, batch, "gpu", seconds * 1e9 / batch});
  };

  // ---- update batches: DCSR apply + oracle rebuild. The erase batch
  // samples EXISTING edges so it is always effective: the round's final
  // delta then contains erases and refresh() deterministically takes the
  // full-rebuild path (the incremental path is measured separately below).
  for (const std::size_t batch_size : {1u << 10, 1u << 14, 1u << 18}) {
    double total = 0;
    const std::uint64_t before = ctx.launch_count();
    for (int r = 0; r < runs; ++r) {
      auto inserts = random_batch(rng, n, batch_size);
      std::vector<graph::Edge> erases(batch_size / 4);
      const auto& current = dg.snapshot(ctx).edges;
      for (auto& e : erases) e = current[rng.below(current.size())];
      util::Timer timer;
      dg.insert_edges(ctx, inserts);
      dg.erase_edges(ctx, erases);
      oracle.refresh(ctx, dg);
      total += timer.seconds();
    }
    // Average launches per round (compaction and adaptive sort pass counts
    // make individual rounds vary).
    record("update_refresh", batch_size, total / runs,
           (ctx.launch_count() - before) / runs);
  }

  // ---- incremental refresh vs full rebuild: small insert-only batches of
  // intra-component edges (the delta shape the incremental path serves).
  // Timed per phase: refresh() only — the DCSR apply is identical for both.
  {
    const auto cc = graph::connected_component_labels(dg.snapshot(ctx));
    auto intra_batch = [&](std::size_t size) {
      std::vector<graph::Edge> batch;
      while (batch.size() < size) {
        const auto u = static_cast<NodeId>(rng.below(n));
        const auto v = static_cast<NodeId>(rng.below(n));
        if (u != v && cc[u] == cc[v]) batch.push_back({u, v});
      }
      return batch;
    };
    for (const std::size_t batch_size : {1u << 8, 1u << 10, 1u << 12, 1u << 14}) {
      double incr_total = 0, full_total = 0;
      std::uint64_t incr_launches = 0, full_launches = 0;
      for (int r = 0; r < runs; ++r) {
        oracle.refresh(ctx, dg);  // make the index current first
        dg.insert_edges(ctx, intra_batch(batch_size));
        const std::size_t incrementals_before = oracle.incremental_refreshes();
        std::uint64_t before = ctx.launch_count();
        util::Timer timer;
        oracle.refresh(ctx, dg);
        incr_total += timer.seconds();
        incr_launches += ctx.launch_count() - before;
        if (oracle.incremental_refreshes() == incrementals_before) {
          std::fprintf(stderr, "warning: incremental path not taken at "
                       "batch=%zu\n", batch_size);
        }
        dynamic::ConnectivityOracle scratch;  // full pipeline, same snapshot
        before = ctx.launch_count();
        timer.reset();
        scratch.refresh(ctx, dg);
        full_total += timer.seconds();
        full_launches += ctx.launch_count() - before;
      }
      record("refresh_incremental", batch_size, incr_total / runs,
             incr_launches / runs);
      record("refresh_full_rebuild", batch_size, full_total / runs,
             full_launches / runs);
    }
  }

  // ---- query batches: one kernel per batch
  for (const std::size_t batch_size : {1u << 10, 1u << 15, 1u << 20}) {
    const auto queries = random_queries(rng, n, batch_size);
    std::vector<std::uint8_t> same;
    std::vector<NodeId> dist;
    std::uint64_t before = ctx.launch_count();
    const double same_secs = bench::time_avg(
        runs, [&] { oracle.same_2ecc_batch(ctx, queries, same); });
    record("query_same_2ecc", batch_size,
           same_secs, (ctx.launch_count() - before) / runs);
    before = ctx.launch_count();
    const double path_secs = bench::time_avg(
        runs, [&] { oracle.bridges_on_path_batch(ctx, queries, dist); });
    record("query_bridges_on_path", batch_size, path_secs,
           (ctx.launch_count() - before) / runs);
  }

  // ---- steady-state mixes: updates and queries interleaved
  const std::vector<std::tuple<std::size_t, std::size_t, const char*>> mixes =
      {{1u << 12, 1u << 16, "mix_1:16"}, {1u << 14, 1u << 14, "mix_1:1"}};
  for (const auto& [updates_per_round, queries_per_round, label] : mixes) {
    std::vector<std::uint8_t> same;
    std::vector<NodeId> dist;
    double total = 0;
    std::size_t served = 0;
    const std::uint64_t before = ctx.launch_count();
    for (int r = 0; r < runs; ++r) {
      auto inserts = random_batch(rng, n, updates_per_round);
      const auto queries = random_queries(rng, n, queries_per_round);
      util::Timer timer;
      dg.insert_edges(ctx, inserts);
      oracle.refresh(ctx, dg);
      oracle.same_2ecc_batch(ctx, queries, same);
      oracle.bridges_on_path_batch(ctx, queries, dist);
      total += timer.seconds();
      served += updates_per_round + 2 * queries_per_round;
    }
    record(label, served / runs, total / runs,
           (ctx.launch_count() - before) / runs);
  }

  table.print();
  if (!bench::write_bench_json("BENCH_dynamic.json", rows)) {
    std::fprintf(stderr, "failed to write BENCH_dynamic.json\n");
    return 1;
  }
  return 0;
}
