// Batch-dynamic subsystem throughput: update batches vs query batches,
// served through an engine Session bound to the DynamicGraph.
//
// The workload the dynamic subsystem exists for: a long-lived graph absorbs
// batches of edge insertions/deletions, the session's epoch-keyed cache
// brings the 2-ecc index up to date once per changed batch, and between
// updates it serves large batches of point queries — each query batch as
// ONE bulk kernel when the policy routes it to the device (the Figure 6
// regime), or as a host loop when the batch is too small to pay a launch.
// Reported per batch size:
//
//   update rows — seconds to apply the batch to the DCSR and answer the
//     first query (the index refresh dominates; launches shows the fixed
//     kernel count);
//   incremental rows — refresh cost alone for small INSERT-ONLY batches,
//     where the cached index replays the delta (LCA kernel + union-find
//     contraction, plus the tree-link path for cross-component edges)
//     instead of the full pipeline, next to a fresh session's full rebuild
//     of the same snapshot;
//   query rows  — queries/s for same_2ecc and bridges_on_path batches on
//     the forced device route, plus the auto route (host below the
//     launch-overhead threshold) for comparison;
//   mix rows    — interleaved update/query rounds at a given ratio, the
//     serving steady state.
//
// Rows also land in BENCH_dynamic.json (same shape as the other BENCH
// files; n is the batch size, ns_per_elem the per-element batch cost).
#include <algorithm>
#include <cstdio>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "engine/engine.hpp"
#include "gen/graphs.hpp"
#include "util/rng.hpp"

namespace {

using namespace emc;

std::vector<graph::Edge> random_batch(util::Rng& rng, NodeId n,
                                      std::size_t size) {
  std::vector<graph::Edge> batch(size);
  for (auto& e : batch) {
    e.u = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
    e.v = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
  }
  return batch;
}

engine::Same2Ecc random_queries(util::Rng& rng, NodeId n, std::size_t size) {
  engine::Same2Ecc request;
  request.pairs.resize(size);
  for (auto& [u, v] : request.pairs) {
    u = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
    v = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
  }
  return request;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto side = static_cast<NodeId>(
      flags.get_int("side", 1024, "base road grid is side x side nodes"));
  const auto runs = std::max(
      1, static_cast<int>(flags.get_int("runs", 3, "timing runs")));
  const bool check = flags.get_int("check", 0,
                                   "exit 1 unless incremental publish costs "
                                   "<= 10% of a full publish") != 0;
  flags.finish();

  engine::Engine eng;
  const device::Context& ctx = eng.device();
  const auto n = static_cast<NodeId>(side) * side;
  std::printf("# dynamic graph: %d nodes (road-like base), %u workers\n\n",
              n, ctx.workers());

  util::Rng rng(42);
  dynamic::DynamicGraph dg(ctx, gen::road_graph(side, side, 0.95, 0.03, 7));
  engine::Session session = eng.session(dg);
  const engine::TwoEccView base = session.run(engine::TwoEcc{});
  std::printf("base: %zu edges, %zu bridges, %zu blocks\n\n", dg.num_edges(),
              base.num_bridges, base.num_blocks);

  // The paper's bulk regime: query batches forced onto the device route.
  engine::Policy device_route;
  device_route.min_device_batch = 1;

  util::Table table({"op", "batch", "seconds", "Melem/s", "launches"});
  std::vector<bench::BenchRow> rows;
  const auto record = [&](const std::string& op, std::size_t batch,
                          double seconds, std::uint64_t launches,
                          const char* context = "gpu") {
    table.add_row({op, bench::human(batch), std::to_string(seconds),
                   std::to_string(batch / seconds / 1e6),
                   std::to_string(launches)});
    rows.push_back({op, batch, context, seconds * 1e9 / batch});
  };

  // ---- update batches: DCSR apply + index refresh (via a 1-pair query).
  // The erase batch samples EXISTING edges so it is always effective: the
  // round's final delta then contains erases and the refresh
  // deterministically takes the full-rebuild path (the incremental paths
  // are measured separately below).
  for (const std::size_t batch_size : {1u << 10, 1u << 14, 1u << 18}) {
    double total = 0;
    const std::uint64_t before = ctx.launch_count();
    for (int r = 0; r < runs; ++r) {
      auto inserts = random_batch(rng, n, batch_size);
      std::vector<graph::Edge> erases(batch_size / 4);
      const auto& current = dg.snapshot(ctx).edges;
      for (auto& e : erases) e = current[rng.below(current.size())];
      util::Timer timer;
      dg.insert_edges(ctx, inserts);
      dg.erase_edges(ctx, erases);
      session.run(engine::Same2Ecc{{{0, 1}}});  // refreshes the index
      total += timer.seconds();
    }
    // Average launches per round (compaction and adaptive sort pass counts
    // make individual rounds vary).
    record("update_refresh", batch_size, total / runs,
           (ctx.launch_count() - before) / runs);
  }

  // ---- incremental refresh vs full rebuild: small insert-only batches of
  // intra-component edges (the delta shape the replay paths serve). Timed
  // per phase: the index refresh only — the DCSR apply is identical for
  // both. The "full" side is a FRESH session on the same graph, whose
  // oracle has no index to replay onto.
  {
    const auto cc = graph::connected_component_labels(dg.snapshot(ctx));
    auto intra_batch = [&](std::size_t size) {
      std::vector<graph::Edge> batch;
      while (batch.size() < size) {
        const auto u = static_cast<NodeId>(rng.below(n));
        const auto v = static_cast<NodeId>(rng.below(n));
        if (u != v && cc[u] == cc[v]) batch.push_back({u, v});
      }
      return batch;
    };
    for (const std::size_t batch_size : {1u << 8, 1u << 10, 1u << 12, 1u << 14}) {
      double incr_total = 0, full_total = 0;
      std::uint64_t incr_launches = 0, full_launches = 0;
      for (int r = 0; r < runs; ++r) {
        session.run(engine::Same2Ecc{{{0, 1}}});  // make the index current
        dg.insert_edges(ctx, intra_batch(batch_size));
        const std::size_t incrementals_before =
            session.two_ecc_index().incremental_refreshes();
        std::uint64_t before = ctx.launch_count();
        util::Timer timer;
        session.run(engine::Same2Ecc{{{0, 1}}});
        incr_total += timer.seconds();
        incr_launches += ctx.launch_count() - before;
        if (session.two_ecc_index().incremental_refreshes() ==
            incrementals_before) {
          std::fprintf(stderr, "warning: incremental path not taken at "
                       "batch=%zu\n", batch_size);
        }
        engine::Session fresh = eng.session(dg);  // full pipeline
        before = ctx.launch_count();
        timer.reset();
        fresh.run(engine::Same2Ecc{{{0, 1}}});
        full_total += timer.seconds();
        full_launches += ctx.launch_count() - before;
      }
      record("refresh_incremental", batch_size, incr_total / runs,
             incr_launches / runs);
      record("refresh_full_rebuild", batch_size, full_total / runs,
             full_launches / runs);
    }
  }

  // ---- epoch publish: bring EVERY serving artifact (edge snapshot, CSR,
  // spanning forest, bridge mask, forest LCA, 2-ecc oracle) to the new
  // epoch, as Session::refresh() does for a publisher. The incremental side
  // replays the insert-only delta onto the previous epoch's artifacts
  // (delta-sized patches + appends); the full side is a fresh session's
  // from-scratch pipeline at the SAME epoch (n-sized). The gap between the
  // two rows is what makes per-batch publishing affordable at streaming
  // cadence — the --check gate pins it.
  double worst_publish_ratio = 0;
  {
    const auto cc = graph::connected_component_labels(dg.snapshot(ctx));
    auto intra_batch = [&](std::size_t size) {
      std::vector<graph::Edge> batch;
      while (batch.size() < size) {
        const auto u = static_cast<NodeId>(rng.below(n));
        const auto v = static_cast<NodeId>(rng.below(n));
        if (u != v && cc[u] == cc[v]) batch.push_back({u, v});
      }
      return batch;
    };
    for (const std::size_t batch_size : {1u << 6, 1u << 10, 1u << 14}) {
      double incr_total = 0, full_total = 0;
      std::uint64_t incr_launches = 0, full_launches = 0;
      for (int r = 0; r < runs; ++r) {
        session.refresh();  // make the previous epoch's artifacts current
        const std::uint64_t replays_before = session.publish_replays();
        dg.insert_edges(ctx, intra_batch(batch_size));
        std::uint64_t before = ctx.launch_count();
        util::Timer timer;
        session.refresh();
        incr_total += timer.seconds();
        incr_launches += ctx.launch_count() - before;
        if (session.publish_replays() == replays_before) {
          std::fprintf(stderr, "warning: publish replay not taken at "
                       "batch=%zu\n", batch_size);
        }
        engine::Session fresh = eng.session(dg);  // full pipeline baseline
        before = ctx.launch_count();
        timer.reset();
        fresh.refresh();
        full_total += timer.seconds();
        full_launches += ctx.launch_count() - before;
      }
      record("publish_incremental", batch_size, incr_total / runs,
             incr_launches / runs);
      record("publish_full", batch_size, full_total / runs,
             full_launches / runs);
      worst_publish_ratio = std::max(worst_publish_ratio,
                                     incr_total / full_total);
    }
  }

  // ---- query batches: one kernel per batch on the device route; the auto
  // route shows what the policy's batch-size threshold does instead.
  for (const std::size_t batch_size : {1u << 10, 1u << 15, 1u << 20}) {
    const engine::Same2Ecc same = random_queries(rng, n, batch_size);
    engine::BridgesOnPath dist;
    dist.pairs = same.pairs;
    std::uint64_t before = ctx.launch_count();
    const double same_secs =
        bench::time_avg(runs, [&] { session.run(same, device_route); });
    record("query_same_2ecc", batch_size, same_secs,
           (ctx.launch_count() - before) / runs);
    before = ctx.launch_count();
    const double path_secs =
        bench::time_avg(runs, [&] { session.run(dist, device_route); });
    record("query_bridges_on_path", batch_size, path_secs,
           (ctx.launch_count() - before) / runs);
    before = ctx.launch_count();
    const double auto_secs =
        bench::time_avg(runs, [&] { session.run(same); });
    // Label the committed row by the route auto actually took: below the
    // launch-overhead threshold the batch is served as a host loop.
    const std::uint64_t auto_launches = (ctx.launch_count() - before) / runs;
    record("query_same_2ecc_auto", batch_size, auto_secs, auto_launches,
           auto_launches == 0 ? "host" : "gpu");
  }

  // ---- steady-state mixes: updates and queries interleaved
  const std::vector<std::tuple<std::size_t, std::size_t, const char*>> mixes =
      {{1u << 12, 1u << 16, "mix_1:16"}, {1u << 14, 1u << 14, "mix_1:1"}};
  for (const auto& [updates_per_round, queries_per_round, label] : mixes) {
    double total = 0;
    std::size_t served = 0;
    const std::uint64_t before = ctx.launch_count();
    for (int r = 0; r < runs; ++r) {
      auto inserts = random_batch(rng, n, updates_per_round);
      const engine::Same2Ecc same = random_queries(rng, n, queries_per_round);
      engine::BridgesOnPath paths;
      paths.pairs = same.pairs;
      util::Timer timer;
      dg.insert_edges(ctx, inserts);
      session.run(same, device_route);
      session.run(paths, device_route);
      total += timer.seconds();
      served += updates_per_round + 2 * queries_per_round;
    }
    record(label, served / runs, total / runs,
           (ctx.launch_count() - before) / runs);
  }

  table.print();
  if (!bench::write_bench_json("BENCH_dynamic.json", rows)) {
    std::fprintf(stderr, "failed to write BENCH_dynamic.json\n");
    return 1;
  }
  if (check && worst_publish_ratio > 0.10) {
    std::fprintf(stderr,
                 "check FAILED: incremental publish cost %.1f%% of a full "
                 "publish (gate: <= 10%%)\n", 100 * worst_publish_ratio);
    return 1;
  }
  if (check) {
    std::printf("\ncheck ok: worst incremental/full publish ratio %.2f%%\n",
                100 * worst_publish_ratio);
  }
  return 0;
}
