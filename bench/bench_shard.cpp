// Sharded serving: K-shard write scaling, cross-shard query overhead, and
// a bursty arrival cell against the routing façade.
//
// Three sections, rows in BENCH_shard.json (committed at repo root):
//
//   WRITE (random endpoints, publishing off): one producer pushes the same
//   pre-generated pool of fresh random edges through a ShardedGraph at
//   K = 1, 2, 4 and drains. This measures the routed write path: at K = 1
//   every edge takes the full DynamicGraph apply pipeline; at K = 4 three
//   quarters of random edges are cross-shard and take the O(1) boundary-set
//   path while the rest split across four quarter-sized graphs. On this
//   single-core container the scaling therefore comes from WORK REDUCTION
//   (boundary shortcut + smaller per-shard arenas), not parallel apply —
//   on a multi-core host the K writer threads stack on top of it.
//     op = shard/write/k<K>        n = updates, ns_per_elem per update
//
//   QUERY (128x128 road grid, K = 4 vs unsharded): the same Same2Ecc and
//   BridgesOnPath pair batches answered by a ShardedView (host-side pair
//   mapping + summary-oracle bulk kernels over the stitched block graph)
//   and by an unsharded engine::Session over the identical edge set. The
//   grid is an adversarial partition for modulo sharding: every horizontal
//   edge is cross-shard, so the boundary set and the summary graph are
//   about half the graph — the overhead cell, not a best case. The one-off
//   stitch build is reported separately (it is cached per epoch vector).
//     op = shard/query/<same2ecc|bridges_on_path>/<sharded|unsharded>
//     op = shard/query/stitch_build      n = summary nodes, total ns
//
//   BURSTY (K = 4): an inhomogeneous-Poisson arrival stream (piecewise-
//   constant calm/burst/calm rates, burst set to 4x the MEASURED apply
//   rate, inversion method per segment) replayed against small ShedOldest
//   per-shard rings with paced publishing, while a reader floods the
//   ShardedDispatcher. Reports how the fleet degraded — shed counts and
//   staleness, never corruption.
//     op = shard/bursty/<accepted|applied|shed|publishes|max_staleness>
//
// With --check 1 (default), exits nonzero if
//   - K = 4 aggregate write throughput < 2x the K = 1 rate, or
//   - sharded query cost > 2x unsharded on either batch family, or
//   - sharded and unsharded query answers disagree anywhere, or
//   - the bursty ledger does not balance (accepted != applied + shed,
//     summed with the boundary ledger) or any reader future is stranded.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <limits>
#include <random>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common.hpp"
#include "engine/engine.hpp"
#include "gen/graphs.hpp"
#include "graph/graph.hpp"
#include "ingest/ingest.hpp"
#include "serve/serve.hpp"
#include "shard/shard.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace emc;

/// `count` random edges absent from `present` (and from each other), global
/// ids — every one is effective on insert, so each K applies identical work.
std::vector<graph::Edge> fresh_edges(util::Rng& rng, NodeId n,
                                     std::size_t count,
                                     std::unordered_set<std::uint64_t> present) {
  std::vector<graph::Edge> out;
  out.reserve(count);
  while (out.size() < count) {
    graph::Edge e{static_cast<NodeId>(rng.below(n)),
                  static_cast<NodeId>(rng.below(n))};
    if (e.u == e.v) continue;
    if (!present.insert(graph::edge_key(e.u, e.v)).second) continue;
    out.push_back(e);
  }
  return out;
}

/// Write-path options: publishing off (drain() measures apply alone).
shard::ShardedOptions write_options(std::size_t shards) {
  shard::ShardedOptions opts;
  opts.shards = shards;
  opts.ingest.queue_bound = 1 << 15;
  opts.ingest.admission = ingest::Admission::kBlock;  // backpressure, no loss
  opts.ingest.max_batch = 2048;
  opts.ingest.linger = std::chrono::microseconds(0);
  opts.ingest.publish_every = std::numeric_limits<std::size_t>::max();
  opts.ingest.idle_publish = std::chrono::hours(1);
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto nodes = static_cast<NodeId>(
      flags.get_int("nodes", 60'000, "write cells: vertex count"));
  const auto updates = static_cast<std::size_t>(flags.get_int(
      "updates", 1 << 16, "write cells: fresh edges pushed per cell"));
  const auto side = static_cast<NodeId>(
      flags.get_int("side", 128, "query cell: road grid side"));
  const auto queries = static_cast<std::size_t>(
      flags.get_int("queries", 1 << 15, "query cell: pairs per batch"));
  const auto bursty_target = static_cast<std::size_t>(flags.get_int(
      "bursty-updates", 100'000, "bursty cell: expected total arrivals"));
  const bool check = flags.get_bool("check", true, "enforce acceptance");
  flags.finish();

  util::Table table({"op", "n", "seconds", "Mops", "note"});
  std::vector<bench::BenchRow> rows;
  bool ok = true;

  // -------------------------------------------------------------- write
  double write_rate_k1 = 0.0;
  double write_rate_k4 = 0.0;
  {
    util::Rng rng(1234);
    const std::vector<graph::Edge> pool =
        fresh_edges(rng, nodes, updates, {});
    std::printf("# write: %d nodes, %zu fresh random edges per cell\n",
                nodes, updates);

    for (const std::size_t k : {std::size_t{1}, std::size_t{2},
                                std::size_t{4}}) {
      shard::ShardedGraph sg(nodes, write_options(k));
      std::vector<ingest::Update> staged(pool.size());
      for (std::size_t i = 0; i < pool.size(); ++i) {
        staged[i] = {pool[i], ingest::UpdateKind::kInsert, 0, 0};
      }

      // Stage the submit-sized chunks before the clock starts — the cell
      // times the sharded write path, not the harness's slicing.
      constexpr std::size_t kPush = 4096;
      std::vector<std::vector<ingest::Update>> chunks;
      for (std::size_t at = 0; at < staged.size(); at += kPush) {
        chunks.emplace_back(
            staged.begin() + static_cast<std::ptrdiff_t>(at),
            staged.begin() + static_cast<std::ptrdiff_t>(
                                 std::min(at + kPush, staged.size())));
      }
      util::Timer timer;
      for (const auto& chunk : chunks) sg.submit(chunk);
      sg.drain();
      const double seconds = timer.seconds();
      const shard::ShardedStats s = sg.stats();

      const double rate = static_cast<double>(updates) / seconds;
      if (k == 1) write_rate_k1 = rate;
      if (k == 4) write_rate_k4 = rate;
      const std::string op = "write/k" + std::to_string(k);
      table.add_row({op, bench::human(updates), std::to_string(seconds),
                     std::to_string(rate / 1e6),
                     std::to_string(s.boundary_edges) + " boundary"});
      rows.push_back({"shard/" + op, updates, "gpu",
                      seconds * 1e9 / static_cast<double>(updates)});
      if (s.ingest.applied + s.boundary_applied + s.boundary_noops !=
          updates) {
        std::printf("FAIL: write k=%zu lost updates (%zu applied + %zu "
                    "boundary of %zu)\n",
                    k, s.ingest.applied,
                    s.boundary_applied + s.boundary_noops, updates);
        ok = false;
      }
    }
    if (check && write_rate_k4 < 2.0 * write_rate_k1) {
      std::printf("FAIL: K=4 write rate %.2fM/s < 2x K=1 rate %.2fM/s\n",
                  write_rate_k4 / 1e6, write_rate_k1 / 1e6);
      ok = false;
    }
  }

  // -------------------------------------------------------------- query
  {
    const NodeId n = side * side;
    const graph::EdgeList grid = gen::road_graph(side, side, 0.9, 0.02, 7);

    shard::ShardedOptions opts = write_options(4);
    opts.ingest.publish_every = 1;  // the query cell serves published state
    shard::ShardedGraph sg(n, grid, opts);
    sg.flush();

    engine::Engine eng;
    engine::Session session = eng.session(grid);
    session.refresh();

    util::Rng rng(777);
    std::vector<std::pair<NodeId, NodeId>> pairs;
    pairs.reserve(queries);
    for (std::size_t q = 0; q < queries; ++q) {
      pairs.push_back({static_cast<NodeId>(rng.below(n)),
                       static_cast<NodeId>(rng.below(n))});
    }

    // The one-off stitch (cached per epoch vector afterwards).
    util::Timer stitch_timer;
    const shard::ShardedView view = sg.view();
    const double stitch_seconds = stitch_timer.seconds();
    table.add_row({"query/stitch_build",
                   std::to_string(view.summary_graph().num_nodes),
                   std::to_string(stitch_seconds), "-",
                   std::to_string(sg.router().boundary_edges()) +
                       " boundary"});
    rows.push_back(
        {"shard/query/stitch_build",
         static_cast<std::size_t>(view.summary_graph().num_nodes), "gpu",
         stitch_seconds * 1e9});
    std::printf("\n# query: %d-node grid, K=4, %zu boundary edges, "
                "%zu-block summary, %zu pairs per batch\n",
                n, sg.router().boundary_edges(), view.num_blocks(), queries);

    const auto run_pair_cell = [&](const char* name, auto request,
                                   auto run_sharded, auto run_unsharded) {
      const auto got = run_sharded(request);
      const auto want = run_unsharded(request);
      if (got != want) {
        std::printf("FAIL: %s sharded answers diverge from unsharded\n",
                    name);
        ok = false;
      }
      const double sharded_s =
          bench::time_avg(5, [&] { (void)run_sharded(request); });
      const double unsharded_s =
          bench::time_avg(5, [&] { (void)run_unsharded(request); });
      const double ratio = sharded_s / unsharded_s;
      for (const auto& [label, seconds] :
           {std::pair<const char*, double>{"sharded", sharded_s},
            std::pair<const char*, double>{"unsharded", unsharded_s}}) {
        table.add_row({std::string("query/") + name + "/" + label,
                       bench::human(queries), std::to_string(seconds),
                       std::to_string(static_cast<double>(queries) /
                                      seconds / 1e6),
                       label == std::string("sharded")
                           ? std::to_string(ratio) + "x"
                           : ""});
        rows.push_back({std::string("shard/query/") + name + "/" + label,
                        queries, "gpu",
                        seconds * 1e9 / static_cast<double>(queries)});
      }
      if (check && ratio > 2.0) {
        std::printf("FAIL: %s cross-shard overhead %.2fx > 2x\n", name,
                    ratio);
        ok = false;
      }
    };

    run_pair_cell(
        "same2ecc", engine::Same2Ecc{pairs},
        [&](const engine::Same2Ecc& r) { return view.run(r); },
        [&](const engine::Same2Ecc& r) { return session.run(r); });
    run_pair_cell(
        "bridges_on_path", engine::BridgesOnPath{pairs},
        [&](const engine::BridgesOnPath& r) { return view.run(r); },
        [&](const engine::BridgesOnPath& r) { return session.run(r); });
  }

  // ------------------------------------------------------------- bursty
  {
    constexpr NodeId kBurstyNodes = 4096;
    // Calibrate the apply throughput through the sharded write path, so
    // the burst rate is 4x what THIS machine sustains.
    util::Rng rng(4321);
    double apply_rate = 0.0;
    {
      shard::ShardedGraph cal_sg(kBurstyNodes, write_options(4));
      const std::vector<graph::Edge> probe =
          fresh_edges(rng, kBurstyNodes, 8192, {});
      std::vector<ingest::Update> staged(probe.size());
      for (std::size_t i = 0; i < probe.size(); ++i) {
        staged[i] = {probe[i], ingest::UpdateKind::kInsert, 0, 0};
      }
      util::Timer cal;
      cal_sg.submit(staged);
      cal_sg.drain();
      apply_rate = static_cast<double>(probe.size()) / cal.seconds();
    }

    const double weights = 0.5 + 4.0 + 0.5;
    double seg_dur =
        static_cast<double>(bursty_target) / (weights * apply_rate);
    seg_dur = std::clamp(seg_dur, 0.03, 1.0);
    const double rates[3] = {0.5 * apply_rate, 4.0 * apply_rate,
                             0.5 * apply_rate};

    std::mt19937_64 gen(99);
    std::vector<double> arrivals_s;
    for (int seg = 0; seg < 3; ++seg) {
      const double mean = rates[seg] * seg_dur;
      const long count = std::poisson_distribution<long>(mean)(gen);
      std::uniform_real_distribution<double> in_seg(seg * seg_dur,
                                                    (seg + 1) * seg_dur);
      for (long i = 0; i < count; ++i) arrivals_s.push_back(in_seg(gen));
    }
    std::sort(arrivals_s.begin(), arrivals_s.end());
    const std::vector<graph::Edge> pool = fresh_edges(
        rng, kBurstyNodes,
        std::min<std::size_t>(arrivals_s.size(), 1 << 19), {});
    std::printf("\n# bursty: %d nodes, K=4, apply rate %.0f/s, %zu arrivals "
                "over %.2fs (burst %.0f/s)\n",
                kBurstyNodes, apply_rate, arrivals_s.size(), 3 * seg_dur,
                rates[1]);

    shard::ShardedOptions opts;
    opts.shards = 4;
    opts.ingest.queue_bound = 512;  // small on purpose: the burst overflows
    opts.ingest.admission = ingest::Admission::kShedOldest;
    opts.ingest.max_batch = 256;
    opts.ingest.linger = std::chrono::microseconds(200);
    opts.ingest.publish_every = 16;
    opts.ingest.publish_min_interval = std::chrono::milliseconds(20);
    shard::ShardedGraph sg(kBurstyNodes, opts);
    shard::ShardedDispatcher dispatcher(sg, {.workers = 1});

    std::atomic<bool> replay_done{false};
    std::size_t answered = 0, unresolved = 0;
    std::thread reader([&] {
      util::Rng qrng(777);
      std::vector<std::future<serve::Reply<std::vector<std::uint8_t>>>>
          inflight;
      while (!replay_done.load(std::memory_order_acquire)) {
        inflight.clear();
        for (int i = 0; i < 32; ++i) {
          engine::Same2Ecc request;
          request.pairs.push_back(
              {static_cast<NodeId>(qrng.below(kBurstyNodes)),
               static_cast<NodeId>(qrng.below(kBurstyNodes))});
          inflight.push_back(dispatcher.submit(std::move(request)));
        }
        for (auto& future : inflight) {
          if (future.wait_for(std::chrono::seconds(5)) !=
              std::future_status::ready) {
            ++unresolved;  // never: faults must not strand readers
            continue;
          }
          if (future.get().status == serve::Status::kOk) ++answered;
        }
      }
    });

    const auto start = std::chrono::steady_clock::now();
    std::vector<ingest::Update> due;
    std::size_t at = 0;
    while (at < arrivals_s.size()) {
      const auto target =
          start +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(arrivals_s[at]));
      std::this_thread::sleep_until(target);
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      due.clear();
      while (at < arrivals_s.size() && arrivals_s[at] <= elapsed) {
        due.push_back({pool[at % pool.size()], ingest::UpdateKind::kInsert,
                       0, 0});
        ++at;
      }
      if (!due.empty()) sg.submit(due);
    }
    sg.flush();
    replay_done.store(true, std::memory_order_release);
    reader.join();

    const shard::ShardedStats s = dispatcher.stats();
    dispatcher.stop();
    sg.stop();

    const std::size_t accepted = s.ingest.accepted + s.boundary_applied +
                                 s.boundary_noops;
    table.add_row({"bursty/replay", bench::human(accepted),
                   std::to_string(3 * seg_dur),
                   std::to_string(static_cast<double>(s.ingest.applied) /
                                  (3 * seg_dur) / 1e6),
                   std::to_string(s.ingest.shed) + " shed"});
    const auto count_row = [&rows](const char* op, std::size_t count) {
      rows.push_back({op, count, "gpu", 0.0});
    };
    count_row("shard/bursty/accepted", accepted);
    count_row("shard/bursty/applied", s.ingest.applied);
    count_row("shard/bursty/shed", s.ingest.shed);
    count_row("shard/bursty/publishes", s.ingest.publishes);
    count_row("shard/bursty/max_staleness",
              static_cast<std::size_t>(s.max_staleness));
    std::printf("bursty: accepted %zu = applied %zu + shed %zu (+ %zu "
                "boundary); %zu publishes, %zu answered\n",
                accepted, s.ingest.applied, s.ingest.shed,
                s.boundary_applied + s.boundary_noops, s.ingest.publishes,
                answered);

    if (check) {
      if (s.ingest.accepted != s.ingest.applied + s.ingest.shed) {
        std::printf("FAIL: bursty ledger does not balance\n");
        ok = false;
      }
      if (unresolved != 0) {
        std::printf("FAIL: %zu reader futures went unresolved\n",
                    unresolved);
        ok = false;
      }
      if (s.ingest.lag != 0) {
        std::printf("FAIL: lag nonzero after flush\n");
        ok = false;
      }
    }
  }

  std::printf("\n");
  table.print();
  if (!bench::write_bench_json("BENCH_shard.json", rows)) {
    std::printf("could not write BENCH_shard.json\n");
    return 1;
  }
  return ok ? 0 : 1;
}
