// Diameter sensitivity at fixed size — the mechanism behind Figures 9-11,
// and the variable the engine's auto policy keys on.
//
// The paper's central bridges claim is that CK degrades with the input
// diameter (its BFS runs one global round per level, and its marking walks
// lengthen), while TV's cost is diameter-invariant. Holding n and m fixed
// and stretching a road grid from square to ribbon isolates exactly that
// variable; the last column shows where the engine's cost model places the
// crossover.
#include <cstdio>
#include <string>

#include "common.hpp"
#include "engine/engine.hpp"
#include "gen/graphs.hpp"
#include "util/bits.hpp"

int main(int argc, char** argv) {
  using namespace emc;
  util::Flags flags(argc, argv);
  const auto area = flags.get_int("area", 1 << 18, "grid nodes (W x H)");
  const auto runs = static_cast<int>(flags.get_int("runs", 1, ""));
  flags.finish();

  engine::Engine eng;
  std::printf("# Diameter sensitivity of bridge finding "
              "(fixed ~%lld-node road grids)\n\n",
              static_cast<long long>(area));
  util::Table table({"grid", "nodes", "edges", "diameter", "gpu_ck_s",
                     "gpu_tv_s", "winner", "auto_pick"});

  for (NodeId width = static_cast<NodeId>(1)
                      << (util::ceil_log2(static_cast<std::uint64_t>(area)) / 2);
       ; width *= 2) {
    const NodeId height = static_cast<NodeId>(area / width);
    // Below ~16 rows the percolated ribbon fragments and the largest
    // component no longer has ~area nodes; stop the sweep there.
    if (height < 16) break;
    const graph::EdgeList g = graph::largest_component(graph::simplified(
        gen::road_graph(width, height, 0.72, 0.04, 1000 + width)));
    engine::Session session = eng.session(g);
    session.num_components();  // input prep outside the timers
    session.diameter_estimate();
    // The REPORTED diameter keeps the pre-engine 4-sweep estimate so the
    // column stays comparable across committed BENCH rows (the session's
    // internal 2-sweep hint only feeds the cost model).
    const NodeId diameter = graph::estimate_diameter(session.csr());

    const auto timed = [&](engine::Backend backend) {
      return bench::time_avg(runs, [&] {
        session.drop_results();
        session.run(engine::Bridges{}, engine::Policy::fixed(backend));
      });
    };
    const double ck = timed(engine::Backend::kCk);
    const double tv = timed(engine::Backend::kTv);
    table.add_row({std::to_string(width) + "x" + std::to_string(height),
                   bench::human(static_cast<std::size_t>(g.num_nodes)),
                   bench::human(g.num_edges()), std::to_string(diameter),
                   util::Table::num(ck), util::Table::num(tv),
                   ck <= tv ? "gpu-ck" : "gpu-tv",
                   std::string(engine::to_string(
                       session.plan(engine::Bridges{}).chosen))});
  }
  table.print();
  return 0;
}
