// Diameter sensitivity at fixed size — the mechanism behind Figures 9-11.
//
// The paper's central bridges claim is that CK degrades with the input
// diameter (its BFS runs one global round per level, and its marking walks
// lengthen), while TV's cost is diameter-invariant. Holding n and m fixed
// and stretching a road grid from square to ribbon isolates exactly that
// variable — the bridge-finding analogue of the LCA depth sweep (Figure 5).
//
// Expectation: gpu-ck total grows roughly linearly with the diameter;
// gpu-tv stays flat; the crossover (paper: TV ahead on every road graph)
// appears once the diameter passes a few thousand.
#include <cstdio>

#include "bridges/chaitanya_kothapalli.hpp"
#include "bridges/dfs_bridges.hpp"
#include "bridges/tarjan_vishkin.hpp"
#include "common.hpp"
#include "gen/graphs.hpp"
#include "util/bits.hpp"

int main(int argc, char** argv) {
  using namespace emc;
  util::Flags flags(argc, argv);
  const auto area = flags.get_int("area", 1 << 18, "grid nodes (W x H)");
  const auto runs = static_cast<int>(flags.get_int("runs", 1, ""));
  flags.finish();

  const bench::Contexts ctx = bench::make_contexts();
  std::printf("# Diameter sensitivity of bridge finding "
              "(fixed ~%lld-node road grids)\n\n",
              static_cast<long long>(area));
  util::Table table({"grid", "nodes", "edges", "diameter", "gpu_ck_s",
                     "gpu_tv_s", "winner"});

  for (NodeId width = static_cast<NodeId>(1)
                      << (util::ceil_log2(static_cast<std::uint64_t>(area)) / 2);
       ; width *= 2) {
    const NodeId height = static_cast<NodeId>(area / width);
    // Below ~16 rows the percolated ribbon fragments and the largest
    // component no longer has ~area nodes; stop the sweep there.
    if (height < 16) break;
    const graph::EdgeList g = graph::largest_component(graph::simplified(
        gen::road_graph(width, height, 0.72, 0.04, 1000 + width)));
    const graph::Csr csr = build_csr(ctx.gpu, g);
    const NodeId diameter = graph::estimate_diameter(csr);

    const double ck = bench::time_avg(
        runs, [&] { bridges::find_bridges_ck(ctx.gpu, g, csr); });
    const double tv = bench::time_avg(
        runs, [&] { bridges::find_bridges_tarjan_vishkin(ctx.gpu, g); });
    table.add_row({std::to_string(width) + "x" + std::to_string(height),
                   bench::human(static_cast<std::size_t>(g.num_nodes)),
                   bench::human(g.num_edges()), std::to_string(diameter),
                   util::Table::num(ck), util::Table::num(tv),
                   ck <= tv ? "gpu-ck" : "gpu-tv"});
  }
  table.print();
  return 0;
}
