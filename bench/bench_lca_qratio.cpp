// Figure 4 — total time (preprocessing + queries) vs queries-to-nodes ratio.
//
// Shallow 8M-node tree in the paper (scaled here), ratio swept 0.125..16.
// Paper expectation: GPU Inlabel overtakes GPU naive at around a 4:1
// queries-to-nodes ratio; the crossover location is size-independent.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "gen/trees.hpp"
#include "lca/inlabel.hpp"
#include "lca/naive.hpp"

int main(int argc, char** argv) {
  using namespace emc;
  util::Flags flags(argc, argv);
  const auto n64 = flags.get_int("nodes", 1 << 19, "tree size");
  const auto runs = static_cast<int>(flags.get_int("runs", 1, "runs per point"));
  flags.finish();
  const auto n = static_cast<NodeId>(n64);

  const bench::Contexts ctx = bench::make_contexts();
  core::ParentTree tree = gen::random_tree(n, gen::kInfiniteGrasp, 5);
  gen::scramble_ids(tree, 6);

  std::printf("# Figure 4: total time vs queries-to-nodes ratio "
              "(shallow tree, n = %s)\n\n",
              bench::human(static_cast<std::size_t>(n)).c_str());
  util::Table table({"ratio", "queries", "naive_total_s", "inlabel_total_s",
                     "winner"});
  for (int k = -3; k <= 4; ++k) {
    const double ratio = std::pow(2.0, k);
    const auto q = static_cast<std::size_t>(ratio * n);
    const auto queries = gen::random_queries(n, q, 100 + k);
    std::vector<NodeId> answers;

    const double naive_total = bench::time_avg(runs, [&] {
      const auto lca = lca::NaiveLca::build(ctx.gpu, tree);
      lca.query_batch(ctx.gpu, queries, answers);
    });
    const double inlabel_total = bench::time_avg(runs, [&] {
      const auto lca = lca::InlabelLca::build_parallel(ctx.gpu, tree);
      lca.query_batch(ctx.gpu, queries, answers);
    });
    table.add_row({util::Table::num(ratio), bench::human(q),
                   util::Table::num(naive_total),
                   util::Table::num(inlabel_total),
                   naive_total <= inlabel_total ? "gpu-naive" : "gpu-inlabel"});
  }
  table.print();
  return 0;
}
