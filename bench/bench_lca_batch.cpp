// Figure 6 — benefit of answering LCA queries in parallel vs batch size.
//
// Queries arrive in batches of a fixed size; each batch is answered with
// one bulk launch. Paper expectations: single-core throughput flat across
// batch sizes; multi-core overtakes it after ~10 queries per batch and
// plateaus ~1000; the GPU overtakes single-core around 100 and reaches its
// peak throughput by batch size ~10000.
#include <cstdio>

#include "common.hpp"
#include "gen/trees.hpp"
#include "lca/inlabel.hpp"

int main(int argc, char** argv) {
  using namespace emc;
  util::Flags flags(argc, argv);
  const auto n64 = flags.get_int("nodes", 1 << 19, "tree size");
  const auto total64 = flags.get_int("queries", 1 << 17, "total queries");
  flags.finish();
  const auto n = static_cast<NodeId>(n64);
  const auto total = static_cast<std::size_t>(total64);

  const bench::Contexts ctx = bench::make_contexts();
  core::ParentTree tree = gen::random_tree(n, gen::kInfiniteGrasp, 21);
  gen::scramble_ids(tree, 22);
  const auto queries = gen::random_queries(n, total, 23);

  const auto cpu1 = lca::InlabelLca::build_sequential(tree);
  const auto multicore = lca::InlabelLca::build_parallel(ctx.multicore, tree);
  const auto gpu = lca::InlabelLca::build_parallel(ctx.gpu, tree);

  std::printf("# Figure 6: query throughput vs batch size "
              "(n = %s, %s total queries)\n\n",
              bench::human(static_cast<std::size_t>(n)).c_str(),
              bench::human(total).c_str());
  util::Table table({"batch", "cpu1_q_per_s", "multicore_q_per_s",
                     "gpu_q_per_s"});

  auto throughput = [&](const lca::InlabelLca& lca,
                        const device::Context& context, std::size_t batch) {
    std::vector<std::pair<NodeId, NodeId>> chunk;
    std::vector<NodeId> answers;
    util::Timer timer;
    for (std::size_t start = 0; start < queries.size(); start += batch) {
      const std::size_t end = std::min(queries.size(), start + batch);
      chunk.assign(queries.begin() + start, queries.begin() + end);
      lca.query_batch(context, chunk, answers);
    }
    return static_cast<double>(queries.size()) / timer.seconds();
  };

  for (std::size_t batch = 1; batch <= total; batch *= 10) {
    table.add_row(
        {bench::human(batch),
         util::Table::sci(throughput(cpu1, ctx.cpu1, batch)),
         util::Table::sci(throughput(multicore, ctx.multicore, batch)),
         util::Table::sci(throughput(gpu, ctx.gpu, batch))});
  }
  table.print();
  return 0;
}
