// Shared helpers for the figure/table benchmark harnesses.
//
// Naming follows the paper: "gpu" = full-width device context (the GPU
// simulation), "multicore" = a CPU-width context, "cpu1" = sequential.
// On this container all contexts may resolve to few workers; what the
// benchmarks compare is the *algorithms* (work/depth), which is what gives
// the figures their shape.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "device/context.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace emc::bench {

struct Contexts {
  device::Context gpu = device::Context::device();
  device::Context multicore{0};
  device::Context cpu1 = device::Context::sequential();
};

inline Contexts make_contexts() {
  Contexts ctx;
  // The paper's multi-core baseline ran on 6 cores / 12 threads; use half
  // the device width (at least 2) as the analogous mid-tier.
  const unsigned workers = std::max(2u, ctx.gpu.workers() / 2);
  ctx.multicore = device::Context(workers);
  return ctx;
}

/// Runs fn() `runs` times and returns the average seconds (the paper
/// reports averages over repeated runs).
template <typename Fn>
double time_avg(int runs, Fn&& fn) {
  double total = 0;
  for (int r = 0; r < runs; ++r) {
    util::Timer timer;
    fn();
    total += timer.seconds();
  }
  return total / runs;
}

/// One machine-readable benchmark observation, the row shape shared by
/// BENCH_primitives.json (written by the google-benchmark reporter in
/// bench_primitives) and the BENCH_*.json files the plain harnesses emit.
struct BenchRow {
  std::string op;
  std::size_t n = 0;
  std::string context;
  double ns_per_elem = 0.0;
};

/// Writes rows as the [{"op", "n", "context", "ns_per_elem"}, ...] array the
/// perf-trajectory tooling tracks across PRs.
inline bool write_bench_json(const char* path,
                             const std::vector<BenchRow>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& row = rows[i];
    std::fprintf(f,
                 "  {\"op\": \"%s\", \"n\": %zu, \"context\": \"%s\", "
                 "\"ns_per_elem\": %.4f}%s\n",
                 row.op.c_str(), row.n, row.context.c_str(), row.ns_per_elem,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  return true;
}

inline std::string human(std::size_t n) {
  char buf[32];
  if (n % 1'000'000 == 0 && n >= 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%zuM", n / 1'000'000);
  } else if (n % 1000 == 0 && n >= 1000) {
    std::snprintf(buf, sizeof(buf), "%zuK", n / 1000);
  } else {
    std::snprintf(buf, sizeof(buf), "%zu", n);
  }
  return buf;
}

}  // namespace emc::bench
