// Figure 10 — bridge-finding algorithms on the real-world-class suite
// (social/web and road-network stand-ins), run as forced-backend requests
// through one engine Session per instance.
//
// Expectations from the paper (wide machines): TV wins everywhere except
// the smallest web graph; the TV-over-CK advantage is largest on the road
// networks (up to ~4.7x), where CK's BFS pays for the huge diameter.
#include <cstdio>
#include <string>

#include "bridge_suite.hpp"
#include "common.hpp"
#include "engine/engine.hpp"

int main(int argc, char** argv) {
  using namespace emc;
  util::Flags flags(argc, argv);
  const auto scale = flags.get_double("scale", 1.0, "road grid scale");
  const auto runs = static_cast<int>(flags.get_int("runs", 1, ""));
  flags.finish();

  engine::Engine eng;
  std::printf("# Figure 10: bridge finding on real-world-class graphs\n\n");
  util::Table table({"graph", "nodes", "edges", "cpu1_dfs_s", "multicore_ck_s",
                     "gpu_ck_s", "gpu_tv_s", "tv_speedup_vs_ck", "auto_pick"});

  for (const auto& inst : bench::real_suite(scale)) {
    const auto& g = inst.graph;
    engine::Session session = eng.session(g);
    session.csr();
    session.num_components();  // input prep outside the timers
    const auto timed = [&](engine::Backend backend) {
      return bench::time_avg(runs, [&] {
        session.drop_results();
        session.run(engine::Bridges{}, engine::Policy::fixed(backend));
      });
    };
    const double dfs = timed(engine::Backend::kDfs);
    const double ck_mc = timed(engine::Backend::kCkMulticore);
    const double ck_gpu = timed(engine::Backend::kCk);
    const double tv = timed(engine::Backend::kTv);
    table.add_row({inst.name,
                   bench::human(static_cast<std::size_t>(g.num_nodes)),
                   bench::human(g.num_edges()), util::Table::num(dfs),
                   util::Table::num(ck_mc), util::Table::num(ck_gpu),
                   util::Table::num(tv),
                   util::Table::num(ck_gpu / tv, 2) + "x",
                   std::string(engine::to_string(
                       session.plan(engine::Bridges{}).chosen))});
  }
  table.print();
  return 0;
}
