// Figure 10 — bridge-finding algorithms on the real-world-class suite
// (social/web and road-network stand-ins).
//
// Expectations from the paper: TV wins everywhere except the smallest
// web graph; the TV-over-CK advantage is largest on the road networks
// (up to ~4.7x), where CK's BFS pays for the huge diameter.
#include <cstdio>

#include "bridge_suite.hpp"
#include "bridges/chaitanya_kothapalli.hpp"
#include "bridges/dfs_bridges.hpp"
#include "bridges/tarjan_vishkin.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace emc;
  util::Flags flags(argc, argv);
  const auto scale = flags.get_double("scale", 1.0, "road grid scale");
  const auto runs = static_cast<int>(flags.get_int("runs", 1, ""));
  flags.finish();

  const bench::Contexts ctx = bench::make_contexts();
  std::printf("# Figure 10: bridge finding on real-world-class graphs\n\n");
  util::Table table({"graph", "nodes", "edges", "cpu1_dfs_s", "multicore_ck_s",
                     "gpu_ck_s", "gpu_tv_s", "tv_speedup_vs_ck"});

  for (const auto& inst : bench::real_suite(scale)) {
    const auto& g = inst.graph;
    const auto csr = build_csr(ctx.gpu, g);
    const double dfs = bench::time_avg(
        runs, [&] { bridges::find_bridges_dfs(csr); });
    const double ck_mc = bench::time_avg(
        runs, [&] { bridges::find_bridges_ck(ctx.multicore, g, csr); });
    const double ck_gpu = bench::time_avg(
        runs, [&] { bridges::find_bridges_ck(ctx.gpu, g, csr); });
    const double tv = bench::time_avg(
        runs, [&] { bridges::find_bridges_tarjan_vishkin(ctx.gpu, g); });
    table.add_row({inst.name,
                   bench::human(static_cast<std::size_t>(g.num_nodes)),
                   bench::human(g.num_edges()), util::Table::num(dfs),
                   util::Table::num(ck_mc), util::Table::num(ck_gpu),
                   util::Table::num(tv),
                   util::Table::num(ck_gpu / tv, 2) + "x"});
  }
  table.print();
  return 0;
}
