// Table 1 — statistics of the largest connected components of the graphs
// used in the bridge-finding experiments: nodes, edges, bridges, diameter —
// plus the per-edge Tarjan-Vishkin cost on each instance, measured through
// an engine Session with the TV backend forced.
//
// Bridges are counted with Tarjan-Vishkin (validated against DFS in the
// test suite); the diameter column is the standard iterated double-BFS
// lower bound, which is what experimental papers report at this scale.
//
// Besides the console table, every run writes machine-readable rows to
// BENCH_bridges.json (same {"op", "n", "context", "ns_per_elem"} shape as
// BENCH_primitives.json; n is the instance's edge count) so the
// bridge-level perf trajectory is tracked across PRs, not just primitives.
#include <algorithm>
#include <cstdio>

#include "bridge_suite.hpp"
#include "common.hpp"
#include "engine/engine.hpp"

int main(int argc, char** argv) {
  using namespace emc;
  util::Flags flags(argc, argv);
  const auto kron_min = static_cast<int>(flags.get_int("kron-min", 12, ""));
  const auto kron_max = static_cast<int>(flags.get_int("kron-max", 16, ""));
  const auto kron_ef = flags.get_double("kron-edge-factor", 89.0, "");
  const auto scale = flags.get_double("scale", 1.0, "road grid scale");
  const auto runs = std::max(
      1, static_cast<int>(flags.get_int("runs", 3, "timing runs")));
  flags.finish();

  engine::Engine eng;
  std::printf("# Table 1: statistics of largest connected components\n\n");
  util::Table table(
      {"graph", "nodes", "edges", "bridges", "diameter", "tv ns/edge"});
  std::vector<bench::BenchRow> rows;

  auto suite = bench::kron_suite(kron_min, kron_max, kron_ef);
  auto real = bench::real_suite(scale);
  suite.insert(suite.end(), std::make_move_iterator(real.begin()),
               std::make_move_iterator(real.end()));

  const engine::Policy tv = engine::Policy::fixed(engine::Backend::kTv);
  for (const auto& inst : suite) {
    const auto& g = inst.graph;
    engine::Session session = eng.session(g);
    session.num_components();  // input prep outside the timers
    const double seconds = bench::time_avg(runs, [&] {
      session.drop_results();
      session.run(engine::Bridges{}, tv);
    });
    const double ns_per_edge = seconds * 1e9 / g.num_edges();
    const std::size_t num_bridges =
        bridges::count_bridges(session.run(engine::Bridges{}, tv));
    table.add_row({inst.name,
                   bench::human(static_cast<std::size_t>(g.num_nodes)),
                   bench::human(g.num_edges()), bench::human(num_bridges),
                   std::to_string(graph::estimate_diameter(session.csr())),
                   std::to_string(ns_per_edge)});
    rows.push_back({"bridges_tv/" + inst.name, g.num_edges(), "gpu",
                    ns_per_edge});
  }
  table.print();
  if (!bench::write_bench_json("BENCH_bridges.json", rows)) {
    std::fprintf(stderr, "failed to write BENCH_bridges.json\n");
    return 1;
  }
  return 0;
}
