// Table 1 — statistics of the largest connected components of the graphs
// used in the bridge-finding experiments: nodes, edges, bridges, diameter.
//
// Bridges are counted with Tarjan-Vishkin (validated against DFS in the
// test suite); the diameter column is the standard iterated double-BFS
// lower bound, which is what experimental papers report at this scale.
#include <cstdio>

#include "bridge_suite.hpp"
#include "bridges/tarjan_vishkin.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace emc;
  util::Flags flags(argc, argv);
  const auto kron_min = static_cast<int>(flags.get_int("kron-min", 12, ""));
  const auto kron_max = static_cast<int>(flags.get_int("kron-max", 16, ""));
  const auto kron_ef = flags.get_double("kron-edge-factor", 89.0, "");
  const auto scale = flags.get_double("scale", 1.0, "road grid scale");
  flags.finish();

  const bench::Contexts ctx = bench::make_contexts();
  std::printf("# Table 1: statistics of largest connected components\n\n");
  util::Table table({"graph", "nodes", "edges", "bridges", "diameter"});

  auto suite = bench::kron_suite(kron_min, kron_max, kron_ef);
  auto real = bench::real_suite(scale);
  suite.insert(suite.end(), std::make_move_iterator(real.begin()),
               std::make_move_iterator(real.end()));

  for (const auto& inst : suite) {
    const auto& g = inst.graph;
    const auto mask = bridges::find_bridges_tarjan_vishkin(ctx.gpu, g);
    const auto csr = graph::build_csr(ctx.gpu, g);
    table.add_row({inst.name,
                   bench::human(static_cast<std::size_t>(g.num_nodes)),
                   bench::human(g.num_edges()),
                   bench::human(bridges::count_bridges(mask)),
                   std::to_string(graph::estimate_diameter(csr))});
  }
  table.print();
  return 0;
}
