// §3.1 preliminary experiment — choosing the sequential CPU baseline.
//
// Sequential Inlabel vs the RMQ/segment-tree LCA. Paper expectations:
// RMQ preprocessing ~2x faster; Inlabel queries ~3x faster; at q = n the
// two draw on total time.
#include <cstdio>

#include "common.hpp"
#include "gen/trees.hpp"
#include "lca/inlabel.hpp"
#include "lca/rmq_lca.hpp"
#include "lca/tarjan_offline.hpp"

int main(int argc, char** argv) {
  using namespace emc;
  util::Flags flags(argc, argv);
  const auto n64 = flags.get_int("nodes", 1 << 19, "tree size");
  const auto runs = static_cast<int>(flags.get_int("runs", 3, "runs per point"));
  flags.finish();
  const auto n = static_cast<NodeId>(n64);

  const device::Context seq = device::Context::sequential();
  core::ParentTree tree = gen::random_tree(n, gen::kInfiniteGrasp, 1);
  gen::scramble_ids(tree, 2);
  const auto queries =
      gen::random_queries(n, static_cast<std::size_t>(n), 3);
  std::vector<NodeId> answers;

  std::printf(
      "# Preliminary experiment (Section 3.1): sequential Inlabel vs "
      "RMQ-based LCA, n = q = %s\n\n",
      bench::human(static_cast<std::size_t>(n)).c_str());

  lca::InlabelLca inlabel = lca::InlabelLca::build_sequential(tree);
  const double inlabel_prep = bench::time_avg(
      runs, [&] { inlabel = lca::InlabelLca::build_sequential(tree); });
  const double inlabel_query = bench::time_avg(
      runs, [&] { inlabel.query_batch(seq, queries, answers); });

  lca::RmqLca rmq = lca::RmqLca::build(tree);
  const double rmq_prep =
      bench::time_avg(runs, [&] { rmq = lca::RmqLca::build(tree); });
  const double rmq_query = bench::time_avg(
      runs, [&] { rmq.query_batch(seq, queries, answers); });

  // Extra row beyond the paper: Tarjan's offline algorithm, the classical
  // all-queries-up-front baseline (no prep/query split — one DFS).
  const double offline_total = bench::time_avg(
      runs, [&] { lca::tarjan_offline_lca(tree, queries); });

  util::Table table({"algo", "prep_s", "query_s", "total_s"});
  table.add_row({"cpu1-inlabel", util::Table::num(inlabel_prep),
                 util::Table::num(inlabel_query),
                 util::Table::num(inlabel_prep + inlabel_query)});
  table.add_row({"cpu1-rmq", util::Table::num(rmq_prep),
                 util::Table::num(rmq_query),
                 util::Table::num(rmq_prep + rmq_query)});
  table.add_row({"cpu1-tarjan-offline", "-", "-",
                 util::Table::num(offline_total)});
  table.print();
  std::printf(
      "\nratios: rmq_prep/inlabel_prep = %.2fx (paper ~0.5x),"
      " rmq_query/inlabel_query = %.2fx (paper ~3x)\n",
      rmq_prep / inlabel_prep, rmq_query / inlabel_query);
  return 0;
}
