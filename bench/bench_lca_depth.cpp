// Figure 5 — total time to answer n queries in an n-node tree vs tree depth.
//
// Grasp swept from 1 (a path) towards infinity; the paper reports the GPU
// Inlabel total flat across depths, the naive algorithm ~2.6x faster on the
// shallowest trees, a draw around average depth ~91, and rapid degradation
// beyond.
#include <cstdio>

#include "common.hpp"
#include "core/tree.hpp"
#include "gen/trees.hpp"
#include "lca/inlabel.hpp"
#include "lca/naive.hpp"

int main(int argc, char** argv) {
  using namespace emc;
  util::Flags flags(argc, argv);
  const auto n64 = flags.get_int("nodes", 1 << 16, "tree size");
  const auto runs = static_cast<int>(flags.get_int("runs", 1, "runs per point"));
  flags.finish();
  const auto n = static_cast<NodeId>(n64);

  const bench::Contexts ctx = bench::make_contexts();
  std::printf("# Figure 5: total time vs average node depth "
              "(n = q = %s)\n\n",
              bench::human(static_cast<std::size_t>(n)).c_str());
  util::Table table({"grasp", "avg_depth", "naive_total_s", "inlabel_total_s",
                     "winner"});

  std::vector<NodeId> grasps;
  for (NodeId g = 1; g < n; g *= 10) grasps.push_back(g);
  grasps.push_back(gen::kInfiniteGrasp);

  for (const NodeId grasp : grasps) {
    core::ParentTree tree = gen::random_tree(n, grasp, 7 + grasp);
    gen::scramble_ids(tree, 8 + grasp);
    const auto depths = core::depths_reference(tree);
    double avg_depth = 0;
    for (const NodeId d : depths) avg_depth += d;
    avg_depth /= static_cast<double>(n);
    const auto queries =
        gen::random_queries(n, static_cast<std::size_t>(n), 9 + grasp);
    std::vector<NodeId> answers;

    const double naive_total = bench::time_avg(runs, [&] {
      const auto lca = lca::NaiveLca::build(ctx.gpu, tree);
      lca.query_batch(ctx.gpu, queries, answers);
    });
    const double inlabel_total = bench::time_avg(runs, [&] {
      const auto lca = lca::InlabelLca::build_parallel(ctx.gpu, tree);
      lca.query_batch(ctx.gpu, queries, answers);
    });
    table.add_row({grasp == gen::kInfiniteGrasp ? "inf" : std::to_string(grasp),
                   util::Table::num(avg_depth, 1),
                   util::Table::num(naive_total),
                   util::Table::num(inlabel_total),
                   naive_total <= inlabel_total ? "gpu-naive" : "gpu-inlabel"});
  }
  table.print();
  return 0;
}
