// Vertex-biconnectivity cost model: what the BccIndex artifact costs to
// build next to the bridge pipeline it rides on, and what the bulk query
// families built on it sustain at the 1M-node scale.
//
// Three sections, one 1M-node road scenario (side^2 nodes; the road shape
// is the adversarial one for the tour/RMQ kernels — large diameter, many
// bridges, blocks of every size):
//
//   build    per-epoch artifact costs, fresh each run: the full bridge
//            pipeline (CSR + forest + Euler tour + bridge mask — what a
//            publish already paid before BCC existed) vs the BccIndex
//            build on the CACHED forest (the marginal cost the new
//            artifact adds to an epoch);
//   query    bulk throughput on the forced-device route, one kernel per
//            batch: SameBcc vs Same2Ecc (its edge-connectivity twin),
//            CcMembership, the Articulations mask re-serve, and
//            grouped-source BfsLevels on the auto route;
//   check    with --check 1 (default), exits nonzero if SameBcc bulk
//            throughput drops under 0.5x Same2Ecc — the two answer the
//            same shape of question from the same artifact cache, so
//            losing 2x means the BCC tables (not the question) got slow.
//
// Rows land in BENCH_bcc.json (committed at repo root):
//   op = bcc/build/<stage>   (n = nodes, ns_per_elem = build ns per node)
//   op = bcc/query/<family>  (n = batch size, ns_per_elem = ns per query)
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "engine/engine.hpp"
#include "gen/graphs.hpp"
#include "graph/graph.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace emc;

  util::Flags flags(argc, argv);
  const auto side = static_cast<NodeId>(
      flags.get_int("side", 1024, "road grid side (side^2 nodes)"));
  const int runs = static_cast<int>(flags.get_int("runs", 2, "timed runs"));
  const auto queries = static_cast<std::size_t>(
      flags.get_int("queries", 1 << 20, "bulk batch size"));
  const bool check =
      flags.get_int("check", 1,
                    "nonzero exit if SameBcc bulk throughput drops under "
                    "0.5x Same2Ecc") != 0;
  flags.finish();

  engine::Engine eng({.calibrate = true});
  const graph::EdgeList g = gen::road_graph(side, side, 0.72, 0.04, 917);
  const auto n = static_cast<std::size_t>(g.num_nodes);
  std::printf("# bcc artifacts + query families: road %zu nodes, %zu edges "
              "(device=%u workers)\n\n",
              n, g.edges.size(), eng.device().workers());
  engine::Session session = eng.session(g);

  util::Table table({"section", "op", "batch", "ns/elem", "M elem/s"});
  std::vector<bench::BenchRow> rows;
  const auto record = [&](const char* section, const std::string& op,
                          std::size_t batch, double seconds) {
    const double ns = seconds * 1e9 / static_cast<double>(batch);
    table.add_row({section, op, bench::human(batch), util::Table::num(ns, 1),
                   util::Table::num(1e3 / ns, 2)});
    rows.push_back({"bcc/" + std::string(section) + "/" + op, batch, "road",
                    ns});
  };

  // --- build: the bridge pipeline a publish already pays, then the
  // marginal BccIndex build on the cached forest.
  const double bridges_s = bench::time_avg(runs, [&] {
    session.drop_artifacts();
    session.drop_results();
    session.run(engine::Bridges{});
  });
  record("build", "bridges_pipeline", n, bridges_s);
  const double bcc_s = bench::time_avg(runs, [&] {
    session.drop_results();  // drops the BccCell, keeps the forest
    session.run(engine::Articulations{});
  });
  record("build", "index", n, bcc_s);

  // --- query: one bulk kernel per batch on the forced-device route.
  engine::Policy device_route = eng.default_policy();
  device_route.min_device_batch = 1;
  util::Rng rng(917);
  std::vector<std::pair<NodeId, NodeId>> pairs;
  std::vector<NodeId> nodes;
  pairs.reserve(queries);
  nodes.reserve(queries);
  for (std::size_t i = 0; i < queries; ++i) {
    pairs.push_back({static_cast<NodeId>(rng.below(g.num_nodes)),
                     static_cast<NodeId>(rng.below(g.num_nodes))});
    nodes.push_back(static_cast<NodeId>(rng.below(g.num_nodes)));
  }
  session.run(engine::Same2Ecc{{pairs[0]}});  // artifacts warm, off the clock

  const double same2ecc_s = bench::time_avg(runs, [&] {
    session.run(engine::Same2Ecc{pairs}, device_route);
  });
  record("query", "same2ecc", queries, same2ecc_s);
  const double samebcc_s = bench::time_avg(runs, [&] {
    session.run(engine::SameBcc{pairs}, device_route);
  });
  record("query", "samebcc", queries, samebcc_s);
  const double ccmember_s = bench::time_avg(runs, [&] {
    session.run(engine::CcMembership{nodes}, device_route);
  });
  record("query", "ccmembership", queries, ccmember_s);
  const double arts_s = bench::time_avg(runs, [&] {
    session.run(engine::Articulations{});
  });
  record("query", "articulations", n, arts_s);

  // BfsLevels groups the batch by source — K pairs on S sources cost S
  // traversals. Auto route: a 2000-level road BFS is exactly the shape
  // the cost model keeps off the simulated-launch device path.
  std::vector<std::pair<NodeId, NodeId>> bfs_pairs;
  for (std::size_t i = 0; i < 4096; ++i) {
    bfs_pairs.push_back({static_cast<NodeId>(i % 4),
                         static_cast<NodeId>(rng.below(g.num_nodes))});
  }
  const double bfs_s = bench::time_avg(runs, [&] {
    session.run(engine::BfsLevels{bfs_pairs});
  });
  record("query", "bfslevels", bfs_pairs.size(), bfs_s);

  table.print();
  const double ratio = same2ecc_s / samebcc_s;  // >1 means SameBcc faster
  std::printf("\nSameBcc bulk throughput = %.2fx Same2Ecc (floor 0.5x)\n",
              ratio);
  if (!bench::write_bench_json("BENCH_bcc.json", rows)) {
    std::fprintf(stderr, "failed to write BENCH_bcc.json\n");
    return 1;
  }
  return check && ratio < 0.5 ? 2 : 0;
}
