// Figure 3 — general comparison of LCA algorithms.
//
// Reproduces all four panels: preprocessing throughput (nodes/s) and query
// throughput (queries/s), on shallow (grasp = infinity) and deep
// (grasp = 1000) trees, for the four algorithm configurations:
//   cpu1-inlabel   — single-core CPU Inlabel (DFS preprocessing)
//   multicore-inlabel — parallel Inlabel on a CPU-width context
//   gpu-naive      — naive pointer-walking algorithm on the device context
//   gpu-inlabel    — Euler-tour Inlabel on the device context
//
// Paper expectations (EXPERIMENTS.md): naive has the fastest preprocessing;
// on shallow trees both GPU algorithms beat the CPU baselines on queries; on
// deep trees the naive query throughput collapses below even cpu1.
#include <cstdio>

#include "common.hpp"
#include "gen/trees.hpp"
#include "lca/inlabel.hpp"
#include "lca/naive.hpp"

int main(int argc, char** argv) {
  using namespace emc;
  util::Flags flags(argc, argv);
  const auto min_n = flags.get_int("min-nodes", 1 << 16, "smallest tree");
  const auto max_n = flags.get_int("max-nodes", 1 << 19, "largest tree");
  const auto runs = static_cast<int>(flags.get_int("runs", 1, "runs per point"));
  const auto deep_grasp =
      flags.get_int("deep-grasp", 1000, "grasp for the deep-tree panels");
  flags.finish();

  const bench::Contexts ctx = bench::make_contexts();
  std::printf("# Figure 3: general comparison of LCA algorithms\n");
  std::printf("# gpu context: %u workers, multicore: %u workers\n\n",
              ctx.gpu.workers(), ctx.multicore.workers());

  for (const bool deep : {false, true}) {
    util::Table table({"shape", "nodes", "algo", "prep_nodes_per_s",
                       "query_per_s"});
    for (std::int64_t n = min_n; n <= max_n; n *= 2) {
      const NodeId grasp =
          deep ? static_cast<NodeId>(deep_grasp) : gen::kInfiniteGrasp;
      core::ParentTree tree =
          gen::random_tree(static_cast<NodeId>(n), grasp, 7 * n + deep);
      gen::scramble_ids(tree, 9 * n + deep);
      const auto queries =
          gen::random_queries(static_cast<NodeId>(n),
                              static_cast<std::size_t>(n), 11 * n + deep);
      std::vector<NodeId> answers;

      struct Row {
        const char* algo;
        double prep;
        double query;
      };
      std::vector<Row> rows;

      {
        lca::InlabelLca lca = lca::InlabelLca::build_sequential(tree);
        const double prep = bench::time_avg(runs, [&] {
          lca = lca::InlabelLca::build_sequential(tree);
        });
        const double query = bench::time_avg(
            runs, [&] { lca.query_batch(ctx.cpu1, queries, answers); });
        rows.push_back({"cpu1-inlabel", prep, query});
      }
      {
        lca::InlabelLca lca = lca::InlabelLca::build_parallel(ctx.multicore, tree);
        const double prep = bench::time_avg(runs, [&] {
          lca = lca::InlabelLca::build_parallel(ctx.multicore, tree);
        });
        const double query = bench::time_avg(
            runs, [&] { lca.query_batch(ctx.multicore, queries, answers); });
        rows.push_back({"multicore-inlabel", prep, query});
      }
      {
        lca::NaiveLca lca = lca::NaiveLca::build(ctx.gpu, tree);
        const double prep = bench::time_avg(
            runs, [&] { lca = lca::NaiveLca::build(ctx.gpu, tree); });
        const double query = bench::time_avg(
            runs, [&] { lca.query_batch(ctx.gpu, queries, answers); });
        rows.push_back({"gpu-naive", prep, query});
      }
      {
        lca::InlabelLca lca = lca::InlabelLca::build_parallel(ctx.gpu, tree);
        const double prep = bench::time_avg(runs, [&] {
          lca = lca::InlabelLca::build_parallel(ctx.gpu, tree);
        });
        const double query = bench::time_avg(
            runs, [&] { lca.query_batch(ctx.gpu, queries, answers); });
        rows.push_back({"gpu-inlabel", prep, query});
      }

      for (const Row& row : rows) {
        table.add_row({deep ? "deep" : "shallow", bench::human(n), row.algo,
                       util::Table::sci(n / row.prep),
                       util::Table::sci(queries.size() / row.query)});
      }
    }
    std::printf("## %s trees (grasp=%s)\n", deep ? "deep" : "shallow",
                deep ? std::to_string(deep_grasp).c_str() : "inf");
    table.print();
    std::printf("\n");
  }
  return 0;
}
