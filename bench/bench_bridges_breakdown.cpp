// Figure 11 — running time breakdown of the GPU bridge-finding algorithms,
// plus the §4.3 hybrid comparison.
//
// Per instance, prints each algorithm's phases in milliseconds:
//   GPU CK     — bfs | mark_non_bridges
//   GPU TV     — spanning_tree | euler_tour | detect_bridges
//   GPU hybrid — spanning_tree | euler_tour | levels_and_parents |
//                mark_non_bridges
//
// Expectations: BFS dominates CK as the diameter grows; hybrid beats CK on
// most instances but never beats TV (its marking phase is not cheaper than
// TV's detect phase once both have paid for spanning tree + Euler tour).
#include <cstdint>
#include <cstdio>
#include <string>

#include "bridge_suite.hpp"
#include "common.hpp"
#include "engine/engine.hpp"

int main(int argc, char** argv) {
  using namespace emc;
  util::Flags flags(argc, argv);
  const auto scale = flags.get_double("scale", 1.0, "road grid scale");
  const auto kron_min = static_cast<int>(flags.get_int("kron-min", 13, ""));
  const auto kron_max = static_cast<int>(flags.get_int("kron-max", 15, ""));
  flags.finish();

  engine::Engine eng;
  std::printf("# Figure 11: runtime breakdown of GPU bridge algorithms\n");
  std::printf("# `launches` counts kernel launches (ThreadPool::launch_count "
              "deltas): each one pays the modeled launch+barrier latency, so "
              "fused pipelines show up directly in this column.\n\n");
  util::Table table({"graph", "algo", "phases_ms", "total_ms", "launches"});

  auto suite = bench::kron_suite(kron_min, kron_max, 89.0);
  auto real = bench::real_suite(scale);
  suite.insert(suite.end(), std::make_move_iterator(real.begin()),
               std::make_move_iterator(real.end()));

  for (const auto& inst : suite) {
    const auto& g = inst.graph;
    engine::Session session = eng.session(g);
    session.csr();
    session.num_components();  // input prep outside the launch windows

    auto render = [](const util::PhaseTimer& phases) {
      std::string out;
      for (const auto& [name, secs] : phases.phases()) {
        if (!out.empty()) out += " | ";
        out += name + "=" + util::Table::num(secs * 1e3, 1);
      }
      return out;
    };

    const auto measure = [&](const char* label, engine::Backend backend) {
      util::PhaseTimer phases;
      session.drop_results();
      const std::uint64_t launches = eng.device_launches();
      session.run(engine::Bridges{&phases}, engine::Policy::fixed(backend));
      table.add_row({inst.name, label, render(phases),
                     util::Table::num(phases.total() * 1e3, 1),
                     std::to_string(eng.device_launches() - launches)});
    };
    measure("gpu-ck", engine::Backend::kCk);
    measure("gpu-tv", engine::Backend::kTv);
    measure("gpu-hybrid", engine::Backend::kHybrid);
  }
  table.print();
  std::printf("\n# Section 4.3 check: hybrid total should usually sit between "
              "CK and TV, and never below TV.\n");
  return 0;
}
