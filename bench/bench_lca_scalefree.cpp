// Figures 7 and 8 — LCA on scale-free Barabási-Albert trees.
//
// Same setup as Figure 3 (q = n, sizes swept) but on preferential-
// attachment trees. Paper expectation: results mirror the shallow-tree
// panels, with the naive algorithm answering queries slightly faster still
// (BA trees are even shallower); performance depends on size only, not on
// the degree distribution.
#include <cstdio>

#include "common.hpp"
#include "gen/trees.hpp"
#include "lca/inlabel.hpp"
#include "lca/naive.hpp"

int main(int argc, char** argv) {
  using namespace emc;
  util::Flags flags(argc, argv);
  const auto min_n = flags.get_int("min-nodes", 1 << 16, "smallest tree");
  const auto max_n = flags.get_int("max-nodes", 1 << 19, "largest tree");
  const auto runs = static_cast<int>(flags.get_int("runs", 1, "runs per point"));
  flags.finish();

  const bench::Contexts ctx = bench::make_contexts();
  std::printf("# Figures 7/8: LCA algorithms on scale-free "
              "(Barabasi-Albert) trees\n\n");
  util::Table table({"nodes", "algo", "prep_nodes_per_s", "query_per_s"});

  for (std::int64_t n = min_n; n <= max_n; n *= 2) {
    core::ParentTree tree = gen::barabasi_albert_tree(static_cast<NodeId>(n),
                                                      31 * n);
    gen::scramble_ids(tree, 32 * n);
    const auto queries = gen::random_queries(
        static_cast<NodeId>(n), static_cast<std::size_t>(n), 33 * n);
    std::vector<NodeId> answers;

    auto add = [&](const char* name, double prep, double query) {
      table.add_row({bench::human(n), name, util::Table::sci(n / prep),
                     util::Table::sci(queries.size() / query)});
    };
    {
      lca::InlabelLca lca = lca::InlabelLca::build_sequential(tree);
      add("cpu1-inlabel",
          bench::time_avg(runs,
                          [&] { lca = lca::InlabelLca::build_sequential(tree); }),
          bench::time_avg(runs,
                          [&] { lca.query_batch(ctx.cpu1, queries, answers); }));
    }
    {
      lca::InlabelLca lca = lca::InlabelLca::build_parallel(ctx.multicore, tree);
      add("multicore-inlabel",
          bench::time_avg(
              runs,
              [&] { lca = lca::InlabelLca::build_parallel(ctx.multicore, tree); }),
          bench::time_avg(runs, [&] {
            lca.query_batch(ctx.multicore, queries, answers);
          }));
    }
    {
      lca::NaiveLca lca = lca::NaiveLca::build(ctx.gpu, tree);
      add("gpu-naive",
          bench::time_avg(runs, [&] { lca = lca::NaiveLca::build(ctx.gpu, tree); }),
          bench::time_avg(runs,
                          [&] { lca.query_batch(ctx.gpu, queries, answers); }));
    }
    {
      lca::InlabelLca lca = lca::InlabelLca::build_parallel(ctx.gpu, tree);
      add("gpu-inlabel",
          bench::time_avg(
              runs, [&] { lca = lca::InlabelLca::build_parallel(ctx.gpu, tree); }),
          bench::time_avg(runs,
                          [&] { lca.query_batch(ctx.gpu, queries, answers); }));
    }
  }
  table.print();
  return 0;
}
