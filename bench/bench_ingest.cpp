// Streaming ingest throughput: the UpdateQueue -> Batcher -> Ingestor
// pipeline against the raw insert_edges loop it wraps, plus an overload
// cell replaying a bursty arrival process against a bounded ring.
//
// Two sections, rows in BENCH_ingest.json (committed at repo root):
//
//   STEADY (1M-node road grid): one producer pushes a pre-generated pool
//   of fresh unique edges through the Ingestor as fast as the ring admits
//   them, for several batcher settings; the baseline applies the same pool
//   with direct insert_edges calls in max_batch-sized chunks. Publishing
//   is disabled in both (a no-op publisher on the ingest side) so the
//   cells compare the WRITE PATH alone: ring admission + batching +
//   canonicalization vs a hand-rolled loop. The graph is restored to the
//   base edge set between cells (erase-all, untimed).
//     op = ingest/steady/direct            n = updates, ns_per_elem/update
//     op = ingest/steady/batch<B>          the pipeline at max_batch = B
//
//   BURSTY (128x128 road grid): an inhomogeneous-Poisson arrival stream —
//   piecewise-constant rate calm/burst/calm, with the burst rate set to
//   4x the machine's MEASURED apply throughput (calibrated at startup,
//   the same trick bench_serve's flash crowd uses) — is pre-generated as
//   explicit timestamps and replayed against a small ShedOldest ring with
//   paced publishing, while a reader floods a Dispatcher attached to the
//   Ingestor. Arrival times use the standard inversion method for
//   piecewise-constant rates (per segment: N ~ Poisson(rate x dur), N iid
//   uniform times, sorted — cf. Hohmann, arXiv:1901.10754): the burst
//   segment MUST overflow the ring, and the cell reports how admission
//   and pacing degraded — shed counts and publish lag, never corruption.
//     op = ingest/bursty/<accepted|applied|shed|publishes>   (n = count)
//     op = ingest/bursty/max_lag        n = max observed lag, in updates
//     op = ingest/bursty/latency_ewma   ns_per_elem = enqueue->publish ns
//
// With --check 1 (default), exits nonzero if
//   - the steady pipeline cell matching the direct chunk size falls below
//     90% of the direct rate (the pipeline must cost <= 10% overhead), or
//   - the bursty ledger does not balance (accepted != applied + shed), or
//   - any reader future goes unresolved.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <limits>
#include <random>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common.hpp"
#include "dynamic/dynamic_graph.hpp"
#include "engine/engine.hpp"
#include "gen/graphs.hpp"
#include "graph/graph.hpp"
#include "ingest/ingest.hpp"
#include "serve/serve.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace emc;

std::uint64_t edge_key(const graph::Edge& e) {
  const auto lo = static_cast<std::uint64_t>(std::min(e.u, e.v));
  const auto hi = static_cast<std::uint64_t>(std::max(e.u, e.v));
  return lo << 32 | hi;
}

/// `count` random edges absent from `present` (and from each other) —
/// every one is effective on insert, so direct and pipeline cells apply
/// identical work.
std::vector<graph::Edge> fresh_edges(util::Rng& rng, NodeId n,
                                     std::size_t count,
                                     std::unordered_set<std::uint64_t> present) {
  std::vector<graph::Edge> out;
  out.reserve(count);
  while (out.size() < count) {
    graph::Edge e{static_cast<NodeId>(rng.below(n)),
                  static_cast<NodeId>(rng.below(n))};
    if (e.u == e.v) continue;
    if (!present.insert(edge_key(e)).second) continue;
    out.push_back(e);
  }
  return out;
}

std::unordered_set<std::uint64_t> edge_keys(const graph::EdgeList& g) {
  std::unordered_set<std::uint64_t> keys;
  keys.reserve(g.edges.size() * 2);
  for (const graph::Edge& e : g.edges) keys.insert(edge_key(e));
  return keys;
}

void apply_chunked(dynamic::DynamicGraph& dg, const device::Context& ctx,
                   const std::vector<graph::Edge>& edges, std::size_t chunk,
                   bool insert) {
  for (std::size_t at = 0; at < edges.size(); at += chunk) {
    const std::vector<graph::Edge> batch(
        edges.begin() + static_cast<std::ptrdiff_t>(at),
        edges.begin() +
            static_cast<std::ptrdiff_t>(std::min(at + chunk, edges.size())));
    if (insert) {
      dg.insert_edges(ctx, batch);
    } else {
      dg.erase_edges(ctx, batch);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto side = static_cast<NodeId>(
      flags.get_int("side", 1024, "steady cell: road grid side"));
  const auto updates = static_cast<std::size_t>(flags.get_int(
      "updates", 1 << 18, "steady cell: fresh edges pushed per cell"));
  const auto bursty_side = static_cast<NodeId>(
      flags.get_int("bursty-side", 128, "bursty cell: road grid side"));
  const auto bursty_target = static_cast<std::size_t>(flags.get_int(
      "bursty-updates", 200000, "bursty cell: expected total arrivals"));
  const bool check = flags.get_bool("check", true, "enforce acceptance");
  flags.finish();

  util::Table table({"op", "updates", "seconds", "Mups", "batches"});
  std::vector<bench::BenchRow> rows;
  bool ok = true;

  // ------------------------------------------------------------- steady
  engine::Engine eng;
  const device::Context& ctx = eng.device();
  {
    const auto n = static_cast<NodeId>(side) * side;
    dynamic::DynamicGraph dg(ctx, gen::road_graph(side, side, 0.9, 0.02, 7));
    engine::Session session = eng.session(dg);
    const std::size_t base_edges = dg.num_edges();
    std::printf("# steady: %d nodes, %zu base edges, %u workers, %zu fresh "
                "edges per cell\n",
                n, base_edges, ctx.workers(), updates);

    util::Rng rng(1234);
    const std::vector<graph::Edge> pool =
        fresh_edges(rng, n, updates, edge_keys(dg.snapshot(ctx)));

    constexpr std::size_t kDirectChunk = 2048;
    double direct_rate = 0.0;
    double matched_rate = 0.0;

    // Baseline: the hand-rolled writer loop, chunked at the default
    // max_batch so the device sees the same batch shape.
    {
      util::Timer timer;
      apply_chunked(dg, ctx, pool, kDirectChunk, /*insert=*/true);
      const double seconds = timer.seconds();
      direct_rate = static_cast<double>(updates) / seconds;
      table.add_row({"steady/direct", bench::human(updates),
                     std::to_string(seconds),
                     std::to_string(direct_rate / 1e6),
                     std::to_string(updates / kDirectChunk)});
      rows.push_back({"ingest/steady/direct", updates, "gpu",
                      seconds * 1e9 / static_cast<double>(updates)});
      apply_chunked(dg, ctx, pool, 1 << 16, /*insert=*/false);  // restore
    }

    for (const std::size_t max_batch : {std::size_t{512}, std::size_t{2048},
                                        std::size_t{8192}}) {
      ingest::IngestorOptions opt;
      opt.queue_bound = 1 << 15;
      opt.admission = ingest::Admission::kBlock;  // backpressure, no loss
      opt.max_batch = max_batch;
      opt.linger = std::chrono::microseconds(0);  // opportunistic cuts
      // Publishing off in BOTH cells: this measures the write path alone.
      opt.publish_every = std::numeric_limits<std::size_t>::max();
      opt.idle_publish = std::chrono::hours(1);
      ingest::Ingestor ingestor(eng, dg, session, opt);
      ingestor.set_publisher([](engine::Session&) { return true; });

      std::vector<ingest::Update> staged(pool.size());
      for (std::size_t i = 0; i < pool.size(); ++i) {
        staged[i] = {pool[i], ingest::UpdateKind::kInsert, 0, 0};
      }

      constexpr std::size_t kPush = 4096;
      util::Timer timer;
      for (std::size_t at = 0; at < staged.size(); at += kPush) {
        ingestor.submit(staged.data() + at,
                        std::min(kPush, staged.size() - at));
      }
      ingestor.drain();  // every accepted update applied (publishing off)
      const double seconds = timer.seconds();
      const ingest::IngestorStats s = ingestor.stats();
      ingestor.stop();

      const double rate = static_cast<double>(updates) / seconds;
      if (max_batch == kDirectChunk) matched_rate = rate;
      const std::string op = "steady/batch" + std::to_string(max_batch);
      table.add_row({op, bench::human(updates), std::to_string(seconds),
                     std::to_string(rate / 1e6), std::to_string(s.batches)});
      rows.push_back({"ingest/" + op, updates, "gpu",
                      seconds * 1e9 / static_cast<double>(updates)});
      apply_chunked(dg, ctx, pool, 1 << 16, /*insert=*/false);  // restore
      if (dg.num_edges() != base_edges) {
        std::printf("FAIL: cell did not restore the base graph\n");
        ok = false;
      }
    }

    // Published cell: the same pool with a publish after EVERY batch. Only
    // affordable because insert-only epochs publish by delta replay —
    // every batch's artifacts (snapshot, CSR, forest, mask, LCA, oracle)
    // are patched from the previous epoch instead of rebuilt, so the
    // publish cost rides the delta, not the graph.
    //   op = ingest/steady/published            per-update cost, publish on
    //   op = ingest/steady/publish_replays      epochs published by replay
    //   op = ingest/steady/publish_rebuilds     epochs that fell back
    {
      session.refresh();
      const std::uint64_t replays_before = session.publish_replays();
      const std::uint64_t rebuilds_before = session.publish_rebuilds();
      ingest::IngestorOptions opt;
      opt.queue_bound = 1 << 15;
      opt.admission = ingest::Admission::kBlock;
      opt.max_batch = 2048;
      opt.linger = std::chrono::microseconds(0);
      opt.publish_every = 1;
      ingest::Ingestor ingestor(eng, dg, session, opt);

      std::vector<ingest::Update> staged(pool.size());
      for (std::size_t i = 0; i < pool.size(); ++i) {
        staged[i] = {pool[i], ingest::UpdateKind::kInsert, 0, 0};
      }
      constexpr std::size_t kPush = 4096;
      util::Timer timer;
      for (std::size_t at = 0; at < staged.size(); at += kPush) {
        ingestor.submit(staged.data() + at,
                        std::min(kPush, staged.size() - at));
      }
      ingestor.flush();  // applied AND published
      const double seconds = timer.seconds();
      const ingest::IngestorStats s = ingestor.stats();
      ingestor.stop();

      const std::uint64_t replays = session.publish_replays() - replays_before;
      const std::uint64_t rebuilds =
          session.publish_rebuilds() - rebuilds_before;
      table.add_row({"steady/published", bench::human(updates),
                     std::to_string(seconds),
                     std::to_string(static_cast<double>(updates) / seconds /
                                    1e6),
                     std::to_string(s.publishes)});
      rows.push_back({"ingest/steady/published", updates, "gpu",
                      seconds * 1e9 / static_cast<double>(updates)});
      rows.push_back({"ingest/steady/publish_replays",
                      static_cast<std::size_t>(replays), "gpu", 0.0});
      rows.push_back({"ingest/steady/publish_rebuilds",
                      static_cast<std::size_t>(rebuilds), "gpu", 0.0});
      std::printf("published: %zu publishes = %llu replays + %llu rebuilds\n",
                  s.publishes, static_cast<unsigned long long>(replays),
                  static_cast<unsigned long long>(rebuilds));
      if (check && replays == 0) {
        std::printf("FAIL: published cell never took the replay path\n");
        ok = false;
      }
      apply_chunked(dg, ctx, pool, 1 << 16, /*insert=*/false);  // restore
      session.refresh();
      if (dg.num_edges() != base_edges) {
        std::printf("FAIL: published cell did not restore the base graph\n");
        ok = false;
      }
    }

    if (check && matched_rate < 0.9 * direct_rate) {
      std::printf("FAIL: pipeline at the matched batch size reached %.2fM/s "
                  "vs direct %.2fM/s (> 10%% overhead)\n",
                  matched_rate / 1e6, direct_rate / 1e6);
      ok = false;
    }
  }

  // ------------------------------------------------------------- bursty
  {
    const auto n = static_cast<NodeId>(bursty_side) * bursty_side;
    dynamic::DynamicGraph dg(
        ctx, gen::road_graph(bursty_side, bursty_side, 0.9, 0.02, 11));
    engine::Session session = eng.session(dg);
    session.refresh();

    // Calibrate the apply throughput (raw, unpublished), so the burst rate
    // is 4x what THIS machine sustains rather than a hardcoded guess.
    util::Rng rng(4321);
    std::unordered_set<std::uint64_t> present = edge_keys(dg.snapshot(ctx));
    const std::vector<graph::Edge> probe = fresh_edges(rng, n, 8192, present);
    util::Timer cal;
    apply_chunked(dg, ctx, probe, 256, /*insert=*/true);
    const double apply_rate =
        static_cast<double>(probe.size()) / cal.seconds();
    apply_chunked(dg, ctx, probe, 1 << 16, /*insert=*/false);  // restore

    // calm/burst/calm at 0.5x / 4x / 0.5x of the apply rate; segment
    // length chosen so the whole replay lands near --bursty-updates
    // arrivals (clamped to stay a real burst, not a blink).
    const double base_rate = apply_rate;
    const double weights = 0.5 + 4.0 + 0.5;
    double seg_dur = static_cast<double>(bursty_target) / (weights * base_rate);
    seg_dur = std::clamp(seg_dur, 0.03, 1.0);
    const double rates[3] = {0.5 * base_rate, 4.0 * base_rate,
                             0.5 * base_rate};

    // Pre-generate the arrival process (inversion per piecewise-constant
    // segment), then the updates themselves: fresh inserts, wrapping the
    // pool when the draw overshoots it (re-inserts are no-ops, which an
    // overload cell does not care about).
    std::mt19937_64 gen(99);
    std::vector<double> arrivals_s;
    for (int seg = 0; seg < 3; ++seg) {
      const double mean = rates[seg] * seg_dur;
      const long count = std::poisson_distribution<long>(mean)(gen);
      std::uniform_real_distribution<double> in_seg(seg * seg_dur,
                                                    (seg + 1) * seg_dur);
      for (long i = 0; i < count; ++i) arrivals_s.push_back(in_seg(gen));
    }
    std::sort(arrivals_s.begin(), arrivals_s.end());
    const std::vector<graph::Edge> pool = fresh_edges(
        rng, n, std::min<std::size_t>(arrivals_s.size(), 1 << 20), present);
    std::printf("\n# bursty: %d nodes, apply rate %.0f/s, %zu arrivals over "
                "%.2fs (burst %.0f/s)\n",
                n, apply_rate, arrivals_s.size(), 3 * seg_dur, rates[1]);

    ingest::IngestorOptions opt;
    opt.queue_bound = 1024;  // small on purpose: the burst must overflow
    opt.admission = ingest::Admission::kShedOldest;
    opt.max_batch = 256;
    opt.linger = std::chrono::microseconds(200);
    opt.publish_every = 16;
    opt.publish_min_interval = std::chrono::milliseconds(20);
    opt.start_paused = true;
    ingest::Ingestor ingestor(eng, dg, session, opt);

    serve::DispatcherOptions dopt;
    dopt.workers = 2;
    serve::Dispatcher dispatcher(session.view(), dopt);
    dispatcher.attach_ingestor(ingestor);
    ingestor.resume();

    std::atomic<bool> replay_done{false};
    std::size_t max_lag = 0;
    std::size_t answered = 0, unresolved = 0;
    std::thread reader([&] {
      util::Rng qrng(777);
      std::vector<std::future<serve::Reply<std::vector<std::uint8_t>>>>
          inflight;
      while (!replay_done.load(std::memory_order_acquire)) {
        inflight.clear();
        for (int i = 0; i < 64; ++i) {
          engine::Same2Ecc request;
          request.pairs.push_back({static_cast<NodeId>(qrng.below(n)),
                                   static_cast<NodeId>(qrng.below(n))});
          inflight.push_back(dispatcher.submit(std::move(request)));
        }
        max_lag = std::max(max_lag, ingestor.lag());
        for (auto& future : inflight) {
          if (future.wait_for(std::chrono::seconds(5)) !=
              std::future_status::ready) {
            ++unresolved;  // never: publish faults must not strand readers
            continue;
          }
          if (future.get().status == serve::Status::kOk) ++answered;
        }
      }
    });

    // Replay: sleep to each pre-generated arrival, submitting every update
    // already due as one push (catch-up batching — exactly what a real
    // receiver loop does when it falls behind).
    const auto start = std::chrono::steady_clock::now();
    std::vector<ingest::Update> due;
    std::size_t at = 0;
    while (at < arrivals_s.size()) {
      const auto target =
          start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(arrivals_s[at]));
      std::this_thread::sleep_until(target);
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      due.clear();
      while (at < arrivals_s.size() && arrivals_s[at] <= elapsed) {
        due.push_back({pool[at % pool.size()], ingest::UpdateKind::kInsert,
                       0, 0});
        ++at;
      }
      if (!due.empty()) ingestor.submit(due);
    }
    ingestor.flush();
    replay_done.store(true, std::memory_order_release);
    reader.join();

    const ingest::IngestorStats s = ingestor.stats();
    ingestor.stop();  // before the Dispatcher: it owns the publish hook
    dispatcher.stop();

    table.add_row({"bursty/replay", bench::human(s.accepted),
                   std::to_string(3 * seg_dur),
                   std::to_string(static_cast<double>(s.applied) /
                                  (3 * seg_dur) / 1e6),
                   std::to_string(s.batches)});
    const auto count_row = [&rows](const char* op, std::size_t count) {
      rows.push_back({op, count, "gpu", 0.0});
    };
    count_row("ingest/bursty/accepted", s.accepted);
    count_row("ingest/bursty/applied", s.applied);
    count_row("ingest/bursty/shed", s.shed);
    count_row("ingest/bursty/publishes", s.publishes);
    count_row("ingest/bursty/max_lag", max_lag);
    rows.push_back(
        {"ingest/bursty/latency_ewma", 1, "gpu", s.latency_ewma_us * 1e3});
    std::printf("bursty: accepted %zu = applied %zu + shed %zu; %zu "
                "publishes, max lag %zu, ewma %.0fus, %zu answered\n",
                s.accepted, s.applied, s.shed, s.publishes, max_lag,
                s.latency_ewma_us, answered);

    if (check) {
      if (s.accepted != s.applied + s.shed) {
        std::printf("FAIL: bursty ledger does not balance\n");
        ok = false;
      }
      if (unresolved != 0) {
        std::printf("FAIL: %zu reader futures went unresolved\n", unresolved);
        ok = false;
      }
      if (s.lag != 0) {
        std::printf("FAIL: lag nonzero after flush\n");
        ok = false;
      }
    }
  }

  std::printf("\n");
  table.print();
  if (!bench::write_bench_json("BENCH_ingest.json", rows)) {
    std::printf("could not write BENCH_ingest.json\n");
    return 1;
  }
  return ok ? 0 : 1;
}
