// Figure 9 — bridge-finding algorithms on the Kronecker ladder.
//
// Total times for the four configurations of the paper. Expectations:
// both GPU algorithms beat the CPU baselines; TV beats CK on all but the
// smallest instance (small diameter keeps CK competitive here).
#include <cstdio>

#include "bridge_suite.hpp"
#include "bridges/chaitanya_kothapalli.hpp"
#include "bridges/dfs_bridges.hpp"
#include "bridges/tarjan_vishkin.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace emc;
  util::Flags flags(argc, argv);
  const auto kron_min = static_cast<int>(flags.get_int("kron-min", 12, ""));
  const auto kron_max = static_cast<int>(flags.get_int("kron-max", 16, ""));
  const auto kron_ef = flags.get_double("kron-edge-factor", 89.0, "");
  const auto runs = static_cast<int>(flags.get_int("runs", 1, ""));
  flags.finish();

  const bench::Contexts ctx = bench::make_contexts();
  std::printf("# Figure 9: bridge finding on Kronecker graphs\n\n");
  util::Table table({"graph", "nodes", "edges", "cpu1_dfs_s", "multicore_ck_s",
                     "gpu_ck_s", "gpu_tv_s"});

  for (const auto& inst : bench::kron_suite(kron_min, kron_max, kron_ef)) {
    const auto& g = inst.graph;
    const auto csr = build_csr(ctx.gpu, g);
    const double dfs = bench::time_avg(
        runs, [&] { bridges::find_bridges_dfs(csr); });
    const double ck_mc = bench::time_avg(
        runs, [&] { bridges::find_bridges_ck(ctx.multicore, g, csr); });
    const double ck_gpu = bench::time_avg(
        runs, [&] { bridges::find_bridges_ck(ctx.gpu, g, csr); });
    const double tv = bench::time_avg(
        runs, [&] { bridges::find_bridges_tarjan_vishkin(ctx.gpu, g); });
    table.add_row({inst.name,
                   bench::human(static_cast<std::size_t>(g.num_nodes)),
                   bench::human(g.num_edges()), util::Table::num(dfs),
                   util::Table::num(ck_mc), util::Table::num(ck_gpu),
                   util::Table::num(tv)});
  }
  table.print();
  return 0;
}
