// Figure 9 — bridge-finding algorithms on the Kronecker ladder, run as
// forced-backend requests through one engine Session per instance.
//
// Total times for the four configurations of the paper, plus the backend
// the auto policy would pick. Expectations on wide machines: both GPU
// algorithms beat the CPU baselines; TV beats CK on all but the smallest
// instance (small diameter keeps CK competitive here).
#include <cstdio>
#include <string>

#include "bridge_suite.hpp"
#include "common.hpp"
#include "engine/engine.hpp"

int main(int argc, char** argv) {
  using namespace emc;
  util::Flags flags(argc, argv);
  const auto kron_min = static_cast<int>(flags.get_int("kron-min", 12, ""));
  const auto kron_max = static_cast<int>(flags.get_int("kron-max", 16, ""));
  const auto kron_ef = flags.get_double("kron-edge-factor", 89.0, "");
  const auto runs = static_cast<int>(flags.get_int("runs", 1, ""));
  flags.finish();

  engine::Engine eng;
  std::printf("# Figure 9: bridge finding on Kronecker graphs\n\n");
  util::Table table({"graph", "nodes", "edges", "cpu1_dfs_s", "multicore_ck_s",
                     "gpu_ck_s", "gpu_tv_s", "auto_pick"});

  for (const auto& inst : bench::kron_suite(kron_min, kron_max, kron_ef)) {
    const auto& g = inst.graph;
    engine::Session session = eng.session(g);
    session.csr();
    session.num_components();  // input prep outside the timers
    const auto timed = [&](engine::Backend backend) {
      return bench::time_avg(runs, [&] {
        session.drop_results();
        session.run(engine::Bridges{}, engine::Policy::fixed(backend));
      });
    };
    const double dfs = timed(engine::Backend::kDfs);
    const double ck_mc = timed(engine::Backend::kCkMulticore);
    const double ck_gpu = timed(engine::Backend::kCk);
    const double tv = timed(engine::Backend::kTv);
    table.add_row({inst.name,
                   bench::human(static_cast<std::size_t>(g.num_nodes)),
                   bench::human(g.num_edges()), util::Table::num(dfs),
                   util::Table::num(ck_mc), util::Table::num(ck_gpu),
                   util::Table::num(tv),
                   std::string(engine::to_string(
                       session.plan(engine::Bridges{}).chosen))});
  }
  table.print();
  return 0;
}
